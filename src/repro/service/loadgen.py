"""Open-loop client fleet for the query service (the J-X6 harness).

The thread-per-client driver in :mod:`repro.workload.driver` cannot
overload a server honestly: a blocked thread stops *sending*, so the
offered load collapses to whatever the server completes (the classic
closed-loop coordinated-omission trap). Here every simulated client is
an asyncio task holding one TCP connection, arrivals follow a fixed
per-client schedule regardless of completions, and latency is measured
from the *scheduled* arrival — when the server falls behind, the
schedule keeps firing and the backlog shows up in p99, exactly like
production traffic.

Hundreds of clients are cheap (tasks, not threads), which is what lets
J-X6 push the server past saturation and watch admission control shed
instead of queueing without bound.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.stats import backoff_delay
from repro.obs.requests import TraceContext
from repro.obs.waits import WaitAttribution, summary_delta
from repro.service.client import ServiceClient
from repro.service.protocol import _HEADER, MAX_FRAME, decode_body, \
    encode_frame
from repro.errors import ServiceProtocolError
from repro.workload.mixes import Operation, get_mix

__all__ = ["run_server_workload"]


class _RemoteDatabase:
    """Just enough of the Database surface for ``get_mix`` to sample its
    hot-row pool over the wire (``.execute(sql).rows``)."""

    def __init__(self, client: ServiceClient):
        self._client = client

    def execute(self, sql: str, params: Tuple[Any, ...] = ()):
        return self._client.execute(sql, params)


class _AsyncChannel:
    """One framed request/response channel on an asyncio connection."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        message["id"] = next(self._ids)
        self._writer.write(encode_frame(message))
        await self._writer.drain()
        header = await self._reader.readexactly(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise ServiceProtocolError(f"oversized response frame {length}")
        return decode_body(await self._reader.readexactly(length))

    async def query(self, sql: str, params=()) -> Dict[str, Any]:
        # the fleet propagates trace context like the blocking client:
        # a traced server links each open-loop request end to end
        return await self.request({
            "op": "query", "sql": sql, "params": list(params),
            "trace": TraceContext.fresh().to_wire(),
        })

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _classify_failure(report, error: Dict[str, Any]) -> str:
    code = error.get("code", "internal")
    if code == "overloaded":
        report.shed += 1
    elif code == "timeout":
        report.timeouts += 1
    elif code != "serialization":
        report.errors += 1
    return code


async def _run_read(channel, op: Operation, report) -> None:
    for sql, params in op.statements:
        response = await channel.query(sql, params)
        if not response.get("ok"):
            _classify_failure(report, response.get("error") or {})
            return
        if response.get("cached"):
            report.cache_hits += 1
    report.reads += 1


async def _run_write(channel, op: Operation, report, config, rng) -> None:
    attempt = 0
    while True:
        response = await channel.query("BEGIN")
        if not response.get("ok"):
            _classify_failure(report, response.get("error") or {})
            break
        failure: Optional[Dict[str, Any]] = None
        for sql, params in op.statements:
            response = await channel.query(sql, params)
            if not response.get("ok"):
                failure = response.get("error") or {}
                break
        if failure is None:
            response = await channel.query("COMMIT")
            if response.get("ok"):
                report.commits += 1
                break
            failure = response.get("error") or {}
        code = _classify_failure(report, failure)
        await channel.query("ROLLBACK")  # best-effort; server also unpins
        if code != "serialization":
            break
        report.aborts += 1
        if attempt >= config.max_retries:
            break
        report.retries += 1
        await asyncio.sleep(backoff_delay(attempt, rng=rng))
        attempt += 1
    report.writes += 1


async def _client_body(
    host: str, port: int, mix, config, report, stop_at: float
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    channel = _AsyncChannel(reader, writer)
    rng = random.Random(
        (config.seed << 16) ^ (0x9E3779B1 * (report.client_id + 1))
    )
    interval = (
        1.0 / config.rate
        if config.mode == "open" and config.rate > 0 else 0.0
    )
    next_arrival = time.perf_counter()
    try:
        while True:
            now = time.perf_counter()
            if now >= stop_at:
                break
            if interval:
                if now < next_arrival:
                    await asyncio.sleep(
                        min(next_arrival - now, stop_at - now)
                    )
                    if time.perf_counter() >= stop_at:
                        break
                # latency clock starts at the *scheduled* arrival: time
                # the connection spent busy with the previous request is
                # server-induced delay, not omitted load
                started = next_arrival
                next_arrival += interval
            else:
                started = time.perf_counter()
            op = mix.next_operation(rng, report.client_id)
            try:
                if op.kind == "read":
                    await _run_read(channel, op, report)
                else:
                    await _run_write(channel, op, report, config, rng)
            finally:
                report.ops += 1
                report.latency.observe(time.perf_counter() - started)
    finally:
        await channel.close()


async def _run_fleet(host, port, mix, config, reports) -> None:
    stop_at = time.perf_counter() + config.duration
    tasks = [
        asyncio.ensure_future(
            _client_body(host, port, mix, config, report, stop_at)
        )
        for report in reports
    ]
    failures = await asyncio.gather(*tasks, return_exceptions=True)
    for failure in failures:
        if isinstance(failure, BaseException):
            raise failure


def run_server_workload(config, address: Optional[str] = None):
    """Drive a running query service with ``config.clients`` open-loop
    clients; returns the same :class:`WorkloadReport` the embedded driver
    produces, with the ``service``/``cache`` sections filled from the
    server's own counters."""
    from repro.workload.driver import ClientReport, WorkloadReport

    config.validate()
    address = address or config.server
    if not address:
        raise ValueError("server workload needs an address (host:port)")
    control = ServiceClient.from_address(address)
    try:
        control.ping()
        mix = get_mix(config.mix, _RemoteDatabase(control), seed=config.seed)
        host, port = control.host, control.port
        reports: List[Any] = [
            ClientReport(client_id=slot) for slot in range(config.clients)
        ]
        before = control.server_stats() if config.waits else None
        start = time.perf_counter()
        asyncio.run(_run_fleet(host, port, mix, config, reports))
        wall = time.perf_counter() - start
        stats = control.server_stats()
    finally:
        control.close()
    attribution = None
    if before is not None:
        # server-side decomposition over the wire: the serve process
        # exports its wait summary in stats(), so the driver can diff
        # before/after and attribute Net:Recv / Net:Send /
        # Service:QueueWait without shell access to the server. Busy
        # time is the worker pool's wall capacity, the same denominator
        # the embedded driver uses per client thread.
        waits_after = stats.get("waits")
        if waits_after is not None:
            pool_size = (stats.get("pool") or {}).get("size", 1) or 1
            attribution = WaitAttribution(
                summary=summary_delta(
                    before.get("waits") or {}, waits_after
                ),
                busy_seconds=wall * pool_size,
            )
    return WorkloadReport(
        config=config,
        wall_seconds=wall,
        clients=reports,
        attribution=attribution,
        service={
            "address": stats.get("address", address),
            "connections_total": stats.get("connections_total", 0),
            "pool": stats.get("pool", {}),
            "admission": stats.get("admission", {}),
        },
        cache=stats.get("cache"),
        requests=stats.get("requests"),
    )
