"""Blocking client for the query service.

.. code-block:: python

    with ServiceClient("127.0.0.1", 5544) as client:
        result = client.execute(
            "SELECT name FROM counties WHERE gid = ?", (7,)
        )
        result.rows      # list of tuples; geometry as WKT strings
        result.cached    # True when served from the server's result cache

Errors come back typed: an ``overloaded`` response raises
:class:`ServiceOverloadedError` (with the server's suggested
``retry_after``), everything else a :class:`ServiceError` whose ``code``
matches the wire code (``timeout`` / ``serialization`` / ``sql`` /
``protocol`` / ``internal``), so retry loops can branch on the class
exactly as they would against the embedded engine.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ServiceError, ServiceOverloadedError
from repro.obs.requests import TraceContext
from repro.service.protocol import (
    decode_rows,
    read_frame,
    write_frame,
)

__all__ = ["ServiceClient", "RemoteResult"]


class RemoteResult:
    __slots__ = ("columns", "rows", "rowcount", "cached", "trace_id")

    def __init__(self, columns: List[str], rows: List[tuple],
                 rowcount: int, cached: bool,
                 trace_id: Optional[str] = None):
        self.columns = columns
        self.rows = rows
        self.rowcount = rowcount
        self.cached = cached
        #: the request's trace id when either side traced it
        self.trace_id = trace_id

    def __repr__(self) -> str:
        return (
            f"RemoteResult(rows={len(self.rows)}, rowcount={self.rowcount}, "
            f"cached={self.cached})"
        )


def _raise_typed(error: Dict[str, Any]) -> None:
    code = error.get("code", "internal")
    message = error.get("message", "service error")
    if code == "overloaded":
        raise ServiceOverloadedError(
            message, retry_after=float(error.get("retry_after", 0.1))
        )
    exc = ServiceError(message)
    exc.code = code
    raise exc


class ServiceClient:
    """One TCP connection = one server session (ordered requests,
    transaction state lives server-side, pinned across BEGIN..COMMIT)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 trace: bool = True):
        self.host = host
        self.port = port
        #: attach a trace context to every query (a handful of cheap id
        #: bytes per request; pass trace=False for a byte-identical wire
        #: image of the pre-tracing protocol)
        self.trace = trace
        #: trace id of the most recent query (for ``jackpine trace``)
        self.last_trace_id: Optional[str] = None
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    @classmethod
    def from_address(cls, address: str, timeout: float = 30.0,
                     trace: bool = True) -> "ServiceClient":
        """``host:port`` string form, as ``--server`` takes it."""
        host, _, port = address.rpartition(":")
        return cls(host or "127.0.0.1", int(port), timeout=timeout,
                   trace=trace)

    # -- request/response ----------------------------------------------------

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._sock is None:
            raise ServiceError("client is closed")
        request["id"] = next(self._ids)
        try:
            write_frame(self._sock, request)
            response = read_frame(self._sock)
        except (ConnectionError, socket.timeout, OSError) as exc:
            self.close()
            raise ServiceError(f"connection lost: {exc}") from exc
        if response is None:
            self.close()
            raise ServiceError("server closed the connection")
        if not response.get("ok"):
            _raise_typed(response.get("error") or {})
        return response

    def execute(self, sql: str, params: Sequence[Any] = ()
                ) -> RemoteResult:
        wire_params = [
            {"$wkt": p.wkt()} if callable(getattr(p, "wkt", None)) else p
            for p in params
        ]
        request: Dict[str, Any] = {
            "op": "query", "sql": sql, "params": wire_params,
        }
        if self.trace:
            ctx = TraceContext.fresh()
            request["trace"] = ctx.to_wire()
        response = self._roundtrip(request)
        trace_id = response.get("trace_id")
        self.last_trace_id = trace_id if isinstance(trace_id, str) else None
        return RemoteResult(
            columns=list(response.get("columns") or []),
            rows=decode_rows(response.get("rows") or []),
            rowcount=int(response.get("rowcount") or 0),
            cached=bool(response.get("cached")),
            trace_id=self.last_trace_id,
        )

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def server_stats(self) -> Dict[str, Any]:
        return self._roundtrip({"op": "stats"})["stats"]

    def trace_record(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """One flight-recorder record from the server (as a plain dict),
        or ``None`` when the id is unknown or already evicted."""
        return self._roundtrip({"op": "trace", "trace_id": trace_id}).get(
            "record"
        )

    def trace_records(self) -> List[Dict[str, Any]]:
        """Brief rows for every buffered request, oldest first."""
        return self._roundtrip({"op": "trace"}).get("records") or []

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
