"""Bounded session pool: DB-API connections leased per request.

The server leases a :class:`~repro.dbapi.connection.Connection` for the
duration of one request (or pins it to a client while a transaction is
open) and returns it afterwards, so ``pool_size`` bounds the number of
engine sessions regardless of how many TCP clients are connected —
the classic pgbouncer-style transaction pooling discipline.

Idle connections older than ``idle_timeout`` are reaped by the server's
housekeeping loop; the pool re-creates sessions lazily on demand, so a
quiet server holds no engine sessions at all.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.dbapi import connect
from repro.errors import ServiceError, ServiceOverloadedError

__all__ = ["SessionPool"]


class SessionPool:
    def __init__(self, database: Any, size: int = 4,
                 idle_timeout: float = 30.0):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self._db = database
        self.size = size
        self.idle_timeout = idle_timeout
        self._cond = threading.Condition()
        #: idle connections as (connection, returned_at), newest last —
        #: reuse is LIFO so the working set stays warm and the tail ages
        #: out for the reaper
        self._idle: List[Tuple[Any, float]] = []
        self._in_use = 0
        self._closed = False
        self.created = 0
        self.reused = 0
        self.reaped = 0
        self.acquire_waits = 0

    def acquire(self, timeout: Optional[float] = None) -> Any:
        """Lease a connection; blocks up to ``timeout`` seconds when the
        pool is exhausted and sheds (:class:`ServiceOverloadedError`)
        rather than queueing forever."""
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        with self._cond:
            while True:
                if self._closed:
                    raise ServiceError("session pool is closed")
                if self._idle:
                    connection, _returned = self._idle.pop()
                    self._in_use += 1
                    self.reused += 1
                    return connection
                if self._in_use < self.size:
                    self._in_use += 1
                    self.created += 1
                    break
                self.acquire_waits += 1
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        raise ServiceOverloadedError(
                            f"no session available within {timeout:.3f}s "
                            f"(pool size {self.size}, all leased)"
                        )
                self._cond.wait(remaining)
        # create outside the lock: connect() touches the engine
        try:
            return connect(database=self._db)
        except BaseException:
            with self._cond:
                self._in_use -= 1
                self._cond.notify()
            raise

    def release(self, connection: Any) -> None:
        """Return a leased connection. A connection handed back with a
        transaction still open is rolled back first — a pooled session
        must never leak one client's transaction into the next lease."""
        if connection.in_transaction:
            connection.rollback()
        with self._cond:
            if self._closed:
                connection.close()
                self._in_use -= 1
                return
            self._idle.append((connection, time.perf_counter()))
            self._in_use -= 1
            self._cond.notify()

    def discard(self, connection: Any) -> None:
        """Drop a leased connection without returning it (broken session)."""
        try:
            connection.close()
        finally:
            with self._cond:
                self._in_use -= 1
                self._cond.notify()

    def reap(self, now: Optional[float] = None) -> int:
        """Close idle connections that sat unused past ``idle_timeout``."""
        if now is None:
            now = time.perf_counter()
        cutoff = now - self.idle_timeout
        with self._cond:
            keep: List[Tuple[Any, float]] = []
            dead: List[Any] = []
            for connection, returned_at in self._idle:
                if returned_at < cutoff:
                    dead.append(connection)
                else:
                    keep.append((connection, returned_at))
            self._idle = keep
            self.reaped += len(dead)
        for connection in dead:
            connection.close()
        return len(dead)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            idle = [connection for connection, _at in self._idle]
            self._idle.clear()
            self._cond.notify_all()
        for connection in idle:
            connection.close()

    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {
                "size": self.size,
                "in_use": self._in_use,
                "idle": len(self._idle),
                "created": self.created,
                "reused": self.reused,
                "reaped": self.reaped,
                "acquire_waits": self.acquire_waits,
            }
