"""The query service: an asyncio TCP server over one embedded database.

Layering, top to bottom:

- **asyncio event loop** (dedicated thread) owns every socket. It
  parses frames, answers ``ping``/``stats`` inline, and applies the
  first admission gate (:meth:`AdmissionControl.try_admit`) *before*
  dispatching a query, so a saturated server sheds with a typed
  ``overloaded`` frame in microseconds instead of queueing the request
  behind a blocked worker.
- **worker threads** (a small :class:`ThreadPoolExecutor`) run the
  blocking engine calls. A worker leases a session from the
  :class:`SessionPool`, executes through the :class:`CachedExecutor`
  (watermark-validated result cache), and returns the response dict.
- **one TCP connection is one session**: requests on a connection are
  handled strictly in order, and a connection whose client has an open
  transaction stays *pinned* to its engine session until COMMIT /
  ROLLBACK / disconnect — the pgbouncer transaction-pooling contract.

Overload therefore has two shedding surfaces — queue-full at admit
time and deadline-expired at pickup time — and the remaining deadline
budget is armed as the statement's guardrail timeout so a query cannot
overstay the budget it was admitted under.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import (
    GuardrailError,
    ReproError,
    SerializationError,
    ServiceError,
    ServiceOverloadedError,
    ServiceProtocolError,
    SqlError,
)
from repro.obs.requests import RECORDER, SlowLog
from repro.obs.waits import NET_RECV, NET_SEND, WAITS
from repro.service.admission import AdmissionControl
from repro.service.cache import CachedExecutor, ResultCache
from repro.service.pool import SessionPool
from repro.service.protocol import (
    _HEADER,
    MAX_FRAME,
    decode_body,
    encode_frame,
    error_payload,
    jsonable_rows,
    trace_context,
)

__all__ = ["ServerConfig", "JackpineServer"]

_EMPTY_CACHE_STATS = {
    "capacity": 0, "entries": 0, "hits": 0, "misses": 0,
    "invalidations": 0, "fills": 0, "bypass": 0,
}


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    #: 0 asks the kernel for an ephemeral port; read it back from
    #: :attr:`JackpineServer.port` after :meth:`~JackpineServer.start`
    port: int = 0
    pool_size: int = 4
    max_queue: int = 32
    #: per-request deadline in seconds (queue wait + execution)
    deadline: float = 1.0
    #: result-cache entries; 0 disables the cache entirely
    cache_capacity: int = 256
    idle_timeout: float = 30.0
    reap_interval: float = 1.0
    #: request tracing + flight recorder (repro.obs.requests); off by
    #: default — the disabled path is one bool check per request
    trace: bool = False
    #: tail-sampling threshold: requests at or above this retain their
    #: full linked span tree
    trace_slow_ms: float = 100.0
    #: flight-recorder ring size (compact records)
    trace_capacity: int = 2048
    #: JSON-lines file appended with every tail-sampled request
    slow_log: Optional[str] = None
    slow_log_max_bytes: int = 4 * 1024 * 1024


class _ClientState:
    """Per-TCP-connection state. Requests on a connection are processed
    sequentially, but shutdown cancellation can land while a worker
    thread is still executing the connection's current request — the
    handler's cleanup then races the worker over the engine session, so
    ``lock`` decides exactly one owner for the release."""

    __slots__ = ("pinned", "running", "closed", "lock")

    def __init__(self):
        #: engine connection held across requests while a txn is open
        self.pinned: Optional[Any] = None
        #: a worker thread is executing this connection's request
        self.running = False
        #: the handler is gone; the worker must release, never re-pin
        self.closed = False
        self.lock = threading.Lock()


class JackpineServer:
    def __init__(self, database: Any, config: Optional[ServerConfig] = None):
        self._db = database
        self.config = config or ServerConfig()
        self.host = self.config.host
        self.port = self.config.port
        self.pool = SessionPool(
            database,
            size=self.config.pool_size,
            idle_timeout=self.config.idle_timeout,
        )
        self.admission = AdmissionControl(
            max_queue=self.config.max_queue,
            deadline=self.config.deadline,
        )
        cache = (
            ResultCache(self.config.cache_capacity)
            if self.config.cache_capacity > 0 else None
        )
        self.cache = cache
        self._cached = CachedExecutor(database, cache)
        # +2 over the pool keeps COMMIT/ROLLBACK on pinned sessions from
        # starving behind workers that are blocked waiting for the pool
        self._workers = ThreadPoolExecutor(
            max_workers=self.config.pool_size + 2,
            thread_name_prefix="jackpine-svc",
        )
        #: the one per-request tracing check (disabled-path discipline)
        self._tracing = bool(self.config.trace)
        self.connections_open = 0
        self.connections_total = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._client_tasks: "set" = set()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "JackpineServer":
        if self._thread is not None:
            raise ServiceError("server already started")
        if self._tracing:
            RECORDER.configure(
                slow_threshold=self.config.trace_slow_ms / 1e3,
                capacity=self.config.trace_capacity,
                slow_log=(
                    SlowLog(self.config.slow_log,
                            self.config.slow_log_max_bytes)
                    if self.config.slow_log else None
                ),
            )
            RECORDER.enable()
            # span-capturing tracing on the engine gives every traced
            # request its executor SpanNode tree to parent
            RECORDER.install(self._db)
        self._thread = threading.Thread(
            target=self._run_loop, name="jackpine-service", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise ServiceError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        self._db.service = self
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None \
                and self._thread.is_alive():
            loop, stop = self._loop, self._stop_event
            loop.call_soon_threadsafe(stop.set)
            self._thread.join(timeout=10)
        if getattr(self._db, "service", None) is self:
            self._db.service = None
        self._workers.shutdown(wait=True)
        self.pool.close()
        if self._tracing:
            # stop recording but keep the buffered records readable —
            # post-mortems outlive the server that produced them
            RECORDER.uninstall(self._db)
            RECORDER.disable()
            RECORDER.close_log()

    def __enter__(self) -> "JackpineServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stats(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "address": self.address,
            "connections_open": self.connections_open,
            "connections_total": self.connections_total,
            "pool": self.pool.stats(),
            "admission": self.admission.stats(),
            "cache": (
                self.cache.stats() if self.cache is not None
                else dict(_EMPTY_CACHE_STATS)
            ),
        }
        if self._tracing:
            stats["requests"] = RECORDER.stats()
        if WAITS.enabled:
            # lets a remote workload driver compute server-side wait
            # deltas (Net:Recv / Net:Send / Service:QueueWait) without
            # shell access to the serve process
            stats["waits"] = WAITS.summary()
        return stats

    # -- event loop ----------------------------------------------------------

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve())
        except BaseException as exc:  # surfaced by start()
            self._startup_error = exc
        finally:
            self._started.set()
            asyncio.set_event_loop(None)
            loop.close()

    async def _serve(self) -> None:
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        sockname = server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started.set()
        reaper = asyncio.ensure_future(self._housekeeping())
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            reaper.cancel()
            for task in list(self._client_tasks):
                task.cancel()
            if self._client_tasks:
                await asyncio.gather(
                    *self._client_tasks, return_exceptions=True
                )

    async def _housekeeping(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(self.config.reap_interval)
            await loop.run_in_executor(self._workers, self.pool.reap)

    async def _handle_client(self, reader, writer) -> None:
        state = _ClientState()
        self._client_tasks.add(asyncio.current_task())
        self.connections_open += 1
        self.connections_total += 1
        try:
            while True:
                try:
                    message, recv_seconds = await self._read_message(reader)
                except ServiceProtocolError as exc:
                    await self._send(writer, {
                        "ok": False,
                        "error": error_payload("protocol", str(exc)),
                    })
                    break
                if message is None:
                    break
                response = await self._dispatch(state, message, recv_seconds)
                # the request's record is filed only after its last byte
                # is on the wire, so net.send is part of the trace
                pending = response.pop("_pending", None)
                send_seconds = await self._send(writer, response)
                if pending is not None:
                    RECORDER.finish(pending, send_seconds)
                if response.get("_close"):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-frame; pinned cleanup below
        except asyncio.CancelledError:
            pass  # server shutting down; pinned cleanup below
        finally:
            self._client_tasks.discard(asyncio.current_task())
            self.connections_open -= 1
            with state.lock:
                state.closed = True
                pinned = None
                if not state.running:
                    # no worker owns the session; reclaim it here. When
                    # a worker IS still executing (shutdown cancelled
                    # this handler mid-request), leave the session to
                    # the worker's _finish_request — it sees ``closed``
                    # and releases on the worker thread, so the session
                    # is never freed while a statement runs on it.
                    pinned, state.pinned = state.pinned, None
            if pinned is not None:
                # disconnect with an open transaction: roll it back and
                # return the session (pool.release rolls back). Called
                # inline, not via the executor — this path also runs
                # during shutdown cancellation, where awaits would be
                # cancelled before the rollback happened.
                self.pool.release(pinned)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_message(self, reader):
        """One ``(frame, recv_seconds)``; ``(None, 0.0)`` on clean EOF
        between frames. The idle wait for the *header* is the client
        thinking, not the network — only the body read is accounted as
        ``Net:Recv`` (and as the trace's ``net.recv`` stage)."""
        try:
            header = await reader.readexactly(_HEADER.size)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None, 0.0
            raise ServiceProtocolError("connection closed mid-header")
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise ServiceProtocolError(
                f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
            )
        start = time.perf_counter()
        body = await reader.readexactly(length)
        seconds = time.perf_counter() - start
        if WAITS.enabled:
            WAITS.record(NET_RECV, seconds)
        return decode_body(body), seconds

    async def _send(self, writer, response: Dict[str, Any]) -> float:
        response.pop("_close", None)
        writer.write(encode_frame(response))
        start = time.perf_counter()
        await writer.drain()
        seconds = time.perf_counter() - start
        if WAITS.enabled:
            WAITS.record(NET_SEND, seconds)
        return seconds

    async def _dispatch(
        self, state: _ClientState, message: Dict[str, Any],
        recv_seconds: float = 0.0,
    ) -> Dict[str, Any]:
        op = message.get("op")
        rid = message.get("id")
        if op == "ping":
            return {"ok": True, "id": rid, "pong": True}
        if op == "stats":
            return {"ok": True, "id": rid, "stats": self.stats()}
        if op == "trace":
            return self._trace_op(message, rid)
        if op != "query":
            return {
                "ok": False, "id": rid, "_close": True,
                "error": error_payload("protocol", f"unknown op {op!r}"),
            }
        sql = message.get("sql")
        if not isinstance(sql, str):
            return {
                "ok": False, "id": rid, "_close": True,
                "error": error_payload("protocol", "query without sql text"),
            }
        pending = None
        if self._tracing:
            # a context-less (old) client still gets a server-minted
            # trace; net.recv started recv_seconds before begin()
            pending = RECORDER.begin(trace_context(message), sql)
            if recv_seconds > 0.0:
                pending.stage(
                    "net.recv", pending.start - recv_seconds, recv_seconds
                )
        params = [
            value["$wkt"]
            if isinstance(value, dict) and "$wkt" in value else value
            for value in (message.get("params") or [])
        ]
        ticket = self.admission.try_admit()
        if ticket is None:
            response = {
                "ok": False, "id": rid,
                "error": error_payload(
                    "overloaded",
                    f"queue full ({self.admission.max_queue} waiting)",
                    retry_after=self.admission.deadline,
                ),
            }
            if pending is not None:
                pending.complete("shed_queue_full")
                response["trace_id"] = pending.trace_id
                response["_pending"] = pending
            return response
        with state.lock:
            state.running = True
        try:
            future = self._workers.submit(
                self._run_query, state, sql, params, ticket, pending
            )
        except RuntimeError:  # executor already shut down during stop
            with state.lock:
                state.running = False
            self.admission.cancel(ticket)
            return {
                "ok": False, "id": rid, "_close": True,
                "error": error_payload(
                    "overloaded", "server shutting down",
                    retry_after=self.admission.deadline,
                ),
            }
        try:
            response = await asyncio.wrap_future(future)
        except asyncio.CancelledError:
            # cancel() succeeds only if the worker never started; then
            # _run_query will never run its cleanup, so undo the admit
            # and the running mark here. A worker that DID start keeps
            # running and cleans up via _finish_request.
            if future.cancel() or future.cancelled():
                with state.lock:
                    state.running = False
                self.admission.cancel(ticket)
            raise
        response["id"] = rid
        if pending is not None:
            response["trace_id"] = pending.trace_id
            response["_pending"] = pending
        return response

    def _trace_op(self, message: Dict[str, Any], rid) -> Dict[str, Any]:
        """``{"op": "trace"}`` lists brief rows; with a ``trace_id`` it
        returns that request's full record (``None`` when evicted)."""
        trace_id = message.get("trace_id")
        if trace_id is None:
            return {
                "ok": True, "id": rid,
                "records": [r.brief() for r in RECORDER.records()],
            }
        record = RECORDER.lookup(str(trace_id))
        return {
            "ok": True, "id": rid,
            "record": record.as_dict() if record is not None else None,
        }

    # -- worker-thread side --------------------------------------------------

    def _run_query(
        self, state: _ClientState, sql: str, params, ticket, pending=None
    ) -> Dict[str, Any]:
        """Runs on a worker thread; returns the response dict and never
        raises (every failure becomes a typed error payload)."""
        connection = None
        began = False
        try:
            remaining = self.admission.begin(ticket)
            began = True
            if pending is not None:
                pending.stage(
                    "queue.wait", ticket.arrival,
                    time.perf_counter() - ticket.arrival,
                )
            connection = state.pinned
            pinned = connection is not None
            acquire_start = time.perf_counter()
            if connection is None:
                connection = self.pool.acquire(timeout=remaining)
            if pending is not None:
                pending.stage(
                    "session.acquire", acquire_start,
                    time.perf_counter() - acquire_start,
                    "pinned" if pinned else "pool",
                )
            # re-clamp to what is left of the deadline now that the
            # pool wait is behind us; the guardrail timeout enforces it
            budget = max(ticket.deadline - time.perf_counter(), 1e-3)
            if pending is None:
                # untraced: byte-identical to the pre-tracing call
                columns, rows, rowcount, cached = self._cached.execute(
                    connection, sql, params, timeout=budget
                )
            else:
                # bound to this thread so the query_end hook files the
                # executor trace with *this* request, not a neighbour's
                RECORDER.bind(pending)
                try:
                    columns, rows, rowcount, cached = self._cached.execute(
                        connection, sql, params, timeout=budget,
                        stages=pending,
                    )
                finally:
                    RECORDER.unbind()
                pending.complete("ok", cached=cached)
            return {
                "ok": True,
                "columns": list(columns),
                "rows": jsonable_rows(rows),
                "rowcount": rowcount,
                "cached": cached,
            }
        except ReproError as exc:
            if pending is not None:
                pending.complete(self._outcome_of(exc))
            return self._error_response(exc)
        except Exception as exc:  # engine invariant broken; don't hide it
            if pending is not None:
                pending.complete("internal")
            return {
                "ok": False,
                "error": error_payload(
                    "internal", f"{type(exc).__name__}: {exc}"
                ),
            }
        finally:
            self._finish_request(state, connection)
            if began:
                self.admission.done()

    def _finish_request(
        self, state: _ClientState, connection: Optional[Any]
    ) -> None:
        """The worker's last act for a request: under the state lock,
        decide whether the session stays pinned, then release outside
        the lock. ``connection`` is ``None`` when the request never got
        a session. If ``state.closed`` is set the handler skipped its
        pinned cleanup because this worker was still running — releasing
        here is what keeps the session single-owned during shutdown."""
        with state.lock:
            state.running = False
            if connection is not None:
                if connection.in_transaction and not state.closed:
                    state.pinned = connection
                    connection = None  # stays leased across requests
                else:
                    state.pinned = None
            elif state.closed:
                # early shed (deadline / pool timeout) after the handler
                # went away: the previously pinned session is ours to free
                connection, state.pinned = state.pinned, None
        if connection is not None:
            self.pool.release(connection)

    @staticmethod
    def _outcome_of(exc: ReproError) -> str:
        if isinstance(exc, ServiceOverloadedError):
            return "overloaded"
        if isinstance(exc, SerializationError):
            return "serialization"
        if isinstance(exc, GuardrailError):
            return "timeout"
        if isinstance(exc, SqlError):
            return "sql"
        return "internal"

    @staticmethod
    def _error_response(exc: ReproError) -> Dict[str, Any]:
        if isinstance(exc, ServiceOverloadedError):
            return {
                "ok": False,
                "error": error_payload(
                    "overloaded", str(exc), retry_after=exc.retry_after
                ),
            }
        if isinstance(exc, SerializationError):
            code = "serialization"
        elif isinstance(exc, GuardrailError):
            code = "timeout"
        elif isinstance(exc, SqlError):
            code = "sql"
        else:
            code = "internal"
        return {"ok": False, "error": error_payload(code, str(exc))}
