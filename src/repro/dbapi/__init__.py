"""PEP 249 (DB-API 2.0) driver over the embedded engines.

This is the reproduction's analogue of the paper's JDBC portability
layer: the entire benchmark is written against :func:`connect` /
:class:`Connection` / :class:`Cursor`, and switching the engine under
test is just ``connect(engine="bluestem")``.

Module-level attributes required by PEP 249 (``apilevel``, ``paramstyle``,
exception hierarchy) are provided so generic DB-API tooling works. Every
public :class:`~repro.errors.ReproError` subclass is catchable through
exactly one PEP 249 name (see :data:`ERROR_MAP`):

========================  ==========================================
PEP 249 name              library errors caught
========================  ==========================================
``InterfaceError``        driver misuse (closed connection/cursor)
``DataError``             geometry parse/validity, topology failures
``OperationalError``      guardrail trips (timeout, cancel, memory
                          budget), transient/injected faults
``IntegrityError``        dump corruption (bad checksum, torn record)
``ProgrammingError``      SQL syntax and planning errors
``NotSupportedError``     profile feature gaps
``DatabaseError``         any engine-side failure
========================  ==========================================
"""

from repro.dbapi.connection import Connection, Cursor, InterfaceError, connect
from repro.errors import (
    DumpCorruptionError,
    SimulatedCrashError,
    EngineError,
    GeometryError,
    GuardrailError,
    InjectedFaultError,
    MemoryBudgetError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    SerializationError,
    ServiceError,
    ServiceOverloadedError,
    ServiceProtocolError,
    SqlError,
    SqlPlanError,
    SqlProgrammingError,
    SqlSyntaxError,
    TopologyError,
    TransientError,
    UnsupportedFeatureError,
    WkbParseError,
    WktParseError,
)

apilevel = "2.0"
threadsafety = 1  # threads may share the module, not connections
paramstyle = "qmark"


# -- PEP 249 exception hierarchy, aliased onto the library's own errors ----


class Warning(Exception):  # noqa: A001 - name mandated by PEP 249
    pass


Error = ReproError
DatabaseError = EngineError
DataError = GeometryError
OperationalError = EngineError
IntegrityError = DumpCorruptionError
InternalError = EngineError
ProgrammingError = SqlProgrammingError
NotSupportedError = UnsupportedFeatureError

#: every public library error -> the PEP 249 name that catches it; the
#: table-driven mapping test asserts this stays total over repro.errors
ERROR_MAP = {
    ReproError: Error,
    GeometryError: DataError,
    WktParseError: DataError,
    WkbParseError: DataError,
    TopologyError: DataError,
    SqlError: Error,
    SqlProgrammingError: ProgrammingError,
    SqlSyntaxError: ProgrammingError,
    SqlPlanError: ProgrammingError,
    UnsupportedFeatureError: NotSupportedError,
    EngineError: DatabaseError,
    GuardrailError: OperationalError,
    QueryTimeoutError: OperationalError,
    QueryCancelledError: OperationalError,
    MemoryBudgetError: OperationalError,
    TransientError: OperationalError,
    InjectedFaultError: OperationalError,
    SerializationError: OperationalError,
    DumpCorruptionError: IntegrityError,
    SimulatedCrashError: OperationalError,
    InterfaceError: InterfaceError,
    # service-tier errors are client-side conditions (shed request,
    # torn frame), not engine failures: they catch as plain Error
    ServiceError: Error,
    ServiceProtocolError: Error,
    ServiceOverloadedError: Error,
}


def error_class(exc: "BaseException | type") -> type:
    """The most specific PEP 249 class that catches ``exc``.

    Accepts an exception instance or class; walks the MRO so subclasses
    defined outside :mod:`repro.errors` resolve through their parents.
    """
    cls = exc if isinstance(exc, type) else type(exc)
    for base in cls.__mro__:
        mapped = ERROR_MAP.get(base)
        if mapped is not None:
            return mapped
    return Error


__all__ = [
    "Connection",
    "Cursor",
    "connect",
    "apilevel",
    "threadsafety",
    "paramstyle",
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    "ERROR_MAP",
    "error_class",
]
