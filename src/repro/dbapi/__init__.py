"""PEP 249 (DB-API 2.0) driver over the embedded engines.

This is the reproduction's analogue of the paper's JDBC portability
layer: the entire benchmark is written against :func:`connect` /
:class:`Connection` / :class:`Cursor`, and switching the engine under
test is just ``connect(engine="bluestem")``.

Module-level attributes required by PEP 249 (``apilevel``, ``paramstyle``,
exception hierarchy) are provided so generic DB-API tooling works.
"""

from repro.dbapi.connection import Connection, Cursor, connect
from repro.errors import (
    EngineError,
    ReproError,
    SqlError,
    SqlPlanError,
    SqlSyntaxError,
    UnsupportedFeatureError,
)

apilevel = "2.0"
threadsafety = 1  # threads may share the module, not connections
paramstyle = "qmark"


# -- PEP 249 exception hierarchy, aliased onto the library's own errors ----


class Warning(Exception):  # noqa: A001 - name mandated by PEP 249
    pass


Error = ReproError
InterfaceError = SqlError
DatabaseError = EngineError
DataError = SqlPlanError
OperationalError = EngineError
IntegrityError = EngineError
InternalError = EngineError
ProgrammingError = SqlSyntaxError
NotSupportedError = UnsupportedFeatureError

__all__ = [
    "Connection",
    "Cursor",
    "connect",
    "apilevel",
    "threadsafety",
    "paramstyle",
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
]
