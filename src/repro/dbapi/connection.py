"""DB-API 2.0 Connection and Cursor over :class:`repro.engines.Database`."""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.engines.database import Database, ResultSet
from repro.errors import SqlError
from repro.guard import CancelToken, Guardrails
from repro.txn import Session


class InterfaceError(SqlError):
    """Driver-level misuse: operating on a closed connection or cursor."""


def connect(
    engine: str = "greenwood",
    database: Optional[Database] = None,
    timeout: Optional[float] = None,
    max_rows: Optional[int] = None,
    max_bytes: Optional[int] = None,
) -> "Connection":
    """Open a connection to an embedded engine.

    ``engine`` selects the profile (``greenwood``/``bluestem``/``ironbark``);
    pass an existing ``database`` to share one datastore across
    connections (the benchmark loads once and reconnects per scenario).
    ``timeout`` / ``max_rows`` / ``max_bytes`` become this connection's
    default guardrails, layered over the database's own defaults and
    under any per-``execute`` overrides.
    """
    return Connection(
        database or Database(engine),
        timeout=timeout, max_rows=max_rows, max_bytes=max_bytes,
    )


class Connection:
    def __init__(
        self,
        database: Database,
        timeout: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ):
        self.database = database
        #: connection-default guardrails; ``None`` fields defer to the
        #: database's :attr:`~repro.engines.database.Database.guardrails`
        self.guardrails = Guardrails(
            timeout=timeout, max_rows=max_rows, max_bytes=max_bytes
        )
        #: per-connection transaction state; statements run auto-commit
        #: until ``BEGIN`` opens a transaction on this session
        self.session = Session()
        self._closed = False

    def commit(self) -> None:
        """Commit the open transaction; a no-op in auto-commit mode (no
        ``BEGIN`` was issued), per PEP 249 convention."""
        self._check_open()
        if self.session.txn is not None:
            self.database.execute("COMMIT", session=self.session)

    def rollback(self) -> None:
        """Roll back the open transaction; a no-op in auto-commit mode."""
        self._check_open()
        if self.session.txn is not None:
            self.database.execute("ROLLBACK", session=self.session)

    def close(self) -> None:
        # PEP 249: closing with a pending transaction rolls it back
        if not self._closed and self.session.txn is not None:
            self.database.execute("ROLLBACK", session=self.session)
        self._closed = True

    @property
    def in_transaction(self) -> bool:
        """Whether a ``BEGIN`` is open on this connection (sqlite3-style)."""
        return self.session.txn is not None

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    # convenience mirrors of the engine API
    @property
    def stats(self):
        return self.database.stats

    @property
    def obs(self):
        """The engine's observability switchboard (tracing/metrics/hooks)."""
        return self.database.obs

    @property
    def metrics(self):
        """Per-connection metrics registry (chained to the global one)."""
        return self.database.obs.metrics

    def last_trace(self):
        """Most recent statement trace (enable via ``obs.enable_tracing()``)."""
        return self.database.last_trace()

    def explain(self, sql: str) -> str:
        self._check_open()
        return self.database.explain(sql)

    def explain_analyze(self, sql: str, params: Sequence[Any] = ()) -> str:
        self._check_open()
        return self.database.explain_analyze(sql, params)

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Cursor:
    arraysize = 1

    def __init__(self, connection: Connection):
        self.connection = connection
        self._result: Optional[ResultSet] = None
        self._position = 0
        self._closed = False

    # -- PEP 249 surface ------------------------------------------------------

    @property
    def description(
        self,
    ) -> Optional[List[Tuple[str, None, None, None, None, None, None]]]:
        if self._result is None or not self._result.columns:
            return None
        return [
            (name, None, None, None, None, None, None)
            for name in self._result.columns
        ]

    @property
    def rowcount(self) -> int:
        if self._result is None:
            return -1
        return self._result.rowcount

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        *,
        timeout: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
    ) -> "Cursor":
        self._check_open()
        defaults = self.connection.guardrails
        self._result = self.connection.database.execute(
            sql, params,
            timeout=timeout if timeout is not None else defaults.timeout,
            max_rows=max_rows if max_rows is not None else defaults.max_rows,
            max_bytes=(
                max_bytes if max_bytes is not None else defaults.max_bytes
            ),
            cancel=cancel,
            session=self.connection.session,
        )
        self._position = 0
        return self

    def executemany(
        self, sql: str, seq_of_params: Sequence[Sequence[Any]]
    ) -> "Cursor":
        self._check_open()
        total = 0
        for params in seq_of_params:
            result = self.connection.database.execute(
                sql, params, session=self.connection.session
            )
            total += result.rowcount
        self._result = ResultSet([], [], total)
        self._position = 0
        return self

    def fetchone(self) -> Optional[tuple]:
        rows = self._rows()
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[tuple]:
        rows = self._rows()
        n = size if size is not None else self.arraysize
        chunk = rows[self._position : self._position + n]
        self._position += len(chunk)
        return chunk

    def fetchall(self) -> List[tuple]:
        rows = self._rows()
        chunk = rows[self._position :]
        self._position = len(rows)
        return chunk

    def close(self) -> None:
        self._closed = True
        self._result = None

    def setinputsizes(self, sizes) -> None:  # PEP 249 no-op
        pass

    def setoutputsize(self, size, column=None) -> None:  # PEP 249 no-op
        pass

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- helpers -----------------------------------------------------------------

    def _rows(self) -> List[tuple]:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no query has been executed")
        return self._result.rows

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()
