"""Logical planner: AST → operator tree.

The planner implements the filter-refine architecture every spatial DBMS
in the paper uses: a WHERE or JOIN conjunct of the shape
``ST_Predicate(geom_column, <expr>)`` is answered by probing the column's
spatial index with the expression's envelope (filter step) and
re-evaluating the original predicate on each candidate row (refinement
step — whose cost and exactness differ per engine profile). Everything
else runs as sequential scans, hash joins on equality conjuncts, or
nested loops.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SqlPlanError
from repro.geometry.base import Envelope, Geometry
from repro.sql import ast
from repro.sql.executor import (
    Aggregate,
    Compiler,
    Distinct,
    Evaluator,
    ExecContext,
    Filter,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    OneRow,
    PBSMJoin,
    PlanNode,
    Project,
    Row,
    Scope,
    SeqScan,
    Sort,
    SpatialTreeJoin,
    contains_aggregate,
    is_aggregate_call,
    referenced_aliases,
)
from repro.sql.functions import SPATIAL_PREDICATES, FunctionRegistry
from repro.storage.catalog import Catalog
from repro.storage.statistics import ColumnStats, estimate_join_pairs
from repro.storage.table import ColumnType, Table

#: predicates whose candidates can be produced by an envelope-intersects
#: index probe (the probe envelope may be expanded, e.g. for ST_DWithin)
_INDEXABLE_PREDICATES = SPATIAL_PREDICATES - {"st_disjoint"}

#: spatial join strategies the planner can be forced into
JOIN_STRATEGIES = ("auto", "inlj", "tree", "pbsm", "nlj")

#: transaction-control statements: no plan tree — the database routes
#: them straight to the transaction manager (they still flow through the
#: same lexer/parser/parse-cache pipeline as everything else)
TXN_CONTROL = (ast.Begin, ast.Commit, ast.Rollback)


def is_txn_control(stmt: ast.Statement) -> bool:
    return isinstance(stmt, TXN_CONTROL)

# -- cost model weights (abstract units per basic operation) ---------------
# per outer row: one index descent of depth ~log2(n_inner)
_COST_PROBE = 1.5
# per candidate pair refined through the compiled-expression INLJ residual
_COST_CAND_INLJ = 1.4
# per candidate pair refined directly via the profile (tree / PBSM joins)
_COST_CAND = 1.0
# per index entry touched by the synchronized tree traversal
_COST_TREE = 0.4
# per input row materialised, partitioned and sorted by PBSM
_COST_PBSM = 1.6
# per pair evaluated by a plain nested loop
_COST_NLJ = 2.2


def split_conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[ast.Expr]) -> Optional[ast.Expr]:
    result: Optional[ast.Expr] = None
    for c in conjuncts:
        result = c if result is None else ast.BinaryOp("and", result, c)
    return result


class _IndexableConjunct:
    """A conjunct answerable through a spatial index on ``alias.column``."""

    __slots__ = ("conjunct", "alias", "column", "other", "radius_expr",
                 "col_first")

    def __init__(self, conjunct: ast.Expr, alias: str, column: str,
                 other: ast.Expr, radius_expr: Optional[ast.Expr] = None,
                 col_first: bool = True):
        self.conjunct = conjunct
        self.alias = alias
        self.column = column
        self.other = other
        self.radius_expr = radius_expr
        # True when the indexed column is the predicate's first argument
        # (or the left '&&' operand) — needed to refine with the original
        # argument order, which matters for asymmetric predicates
        self.col_first = col_first


class Planner:
    def __init__(self, catalog: Catalog, registry: FunctionRegistry, profile):
        self.catalog = catalog
        self.registry = registry
        self.profile = profile
        #: "auto" = cost-based; "inlj"/"tree"/"pbsm"/"nlj" force a spatial
        #: join algorithm (falling back to auto when inapplicable)
        self.join_strategy = "auto"

    # -- entry point ------------------------------------------------------

    def plan_select(self, stmt: ast.Select) -> Tuple[PlanNode, List[str]]:
        scope = Scope()
        refs: List[ast.TableRef] = []
        if stmt.source is not None:
            refs.append(stmt.source)
            refs.extend(join.table for join in stmt.joins)
            for ref in refs:
                scope.add(ref.alias, self.catalog.table(ref.name))

        conjuncts = split_conjuncts(stmt.where)
        for join in stmt.joins:
            conjuncts.extend(split_conjuncts(join.condition))

        knn = self._try_plan_knn(stmt, scope, refs, conjuncts)
        if knn is not None:
            return knn

        plan = self._plan_from(stmt, scope, refs, conjuncts)
        plan, outputs, order_sorted = self._plan_output(stmt, scope, plan)
        names = [name for name, _fn in outputs]
        if stmt.distinct:
            plan = Distinct(plan)
        if stmt.limit is not None or stmt.offset is not None:
            top = Compiler(scope, self.registry, self.profile)
            limit_fn = top.compile(stmt.limit) if stmt.limit is not None else None
            offset_fn = (
                top.compile(stmt.offset) if stmt.offset is not None else None
            )
            plan = Limit(plan, limit_fn, offset_fn)
        del order_sorted
        return plan, names

    # -- KNN rewrite -----------------------------------------------------

    def _try_plan_knn(
        self,
        stmt: ast.Select,
        scope: Scope,
        refs: List[ast.TableRef],
        conjuncts: List[ast.Expr],
    ) -> Optional[Tuple[PlanNode, List[str]]]:
        """Rewrite ``SELECT ... FROM t ORDER BY t.geom <-> <expr> LIMIT k``
        into an exact best-first KNN scan over t's spatial index."""
        if (
            len(refs) != 1
            or conjuncts
            or stmt.group_by
            or stmt.having is not None
            or stmt.distinct
            or stmt.limit is None
            or len(stmt.order_by) != 1
            or stmt.order_by[0].descending
        ):
            return None
        order_expr = stmt.order_by[0].expr
        if not (isinstance(order_expr, ast.BinaryOp) and order_expr.op == "<->"):
            return None
        alias = refs[0].alias.lower()
        table = self.catalog.table(refs[0].name)
        column = None
        probe_expr = None
        for col_side, other_side in (
            (order_expr.left, order_expr.right),
            (order_expr.right, order_expr.left),
        ):
            column = self._geometry_column(col_side, scope, alias)
            if column is not None:
                probe_expr = other_side
                break
        if column is None or probe_expr is None:
            return None
        if referenced_aliases(probe_expr, scope):
            return None  # probe must be row-independent
        entry = self.catalog.index_for(refs[0].name, column)
        if entry is None:
            return None
        items = self._expand_stars(stmt.items, scope)
        if any(contains_aggregate(i.expr) for i in items):
            return None

        from repro.sql.executor import KNNScan, Limit, Project

        compiler = Compiler(scope, self.registry, self.profile)
        probe_fn = compiler.compile(probe_expr)
        limit_fn = compiler.compile(stmt.limit)
        offset_fn = (
            compiler.compile(stmt.offset) if stmt.offset is not None else None
        )

        def k_fn(ctx: ExecContext,
                 limit_fn=limit_fn, offset_fn=offset_fn) -> int:
            limit = limit_fn({}, ctx)
            offset = offset_fn({}, ctx) if offset_fn is not None else 0
            if not isinstance(limit, int) or limit < 0:
                raise SqlPlanError(f"LIMIT must be a non-negative int, got {limit!r}")
            return limit + (offset or 0)

        scan = KNNScan(
            table,
            alias,
            entry,
            table.column_index(column),
            lambda ctx, probe_fn=probe_fn: probe_fn({}, ctx),
            k_fn,
        )
        outputs = [
            (self._item_name(item, index), compiler.compile(item.expr))
            for index, item in enumerate(items)
        ]
        plan: PlanNode = Project(scan, outputs)
        plan = Limit(plan, limit_fn, offset_fn)
        return plan, [name for name, _fn in outputs]

    # -- FROM / WHERE / JOIN ------------------------------------------------

    def _plan_from(
        self,
        stmt: ast.Select,
        scope: Scope,
        refs: List[ast.TableRef],
        conjuncts: List[ast.Expr],
    ) -> PlanNode:
        if not refs:
            if conjuncts:
                raise SqlPlanError("WHERE without FROM")
            return OneRow()
        compiler = Compiler(scope, self.registry, self.profile)
        remaining = list(conjuncts)
        bound: Set[str] = set()

        first = refs[0]
        plan = self._plan_base_table(first, scope, compiler, remaining, bound)
        bound.add(first.alias.lower())
        plan = self._apply_bound_filters(plan, scope, compiler, remaining, bound)

        for ref in refs[1:]:
            alias = ref.alias.lower()
            newly = [
                c
                for c in remaining
                if referenced_aliases(c, scope) <= bound | {alias}
                and alias in referenced_aliases(c, scope)
            ]
            plan = self._plan_join(plan, ref, scope, compiler, newly, bound)
            for c in newly:
                remaining.remove(c)
            bound.add(alias)
            plan = self._apply_bound_filters(
                plan, scope, compiler, remaining, bound
            )
        if remaining:
            residual = conjoin(remaining)
            assert residual is not None
            plan = Filter(plan, compiler.compile(residual), "residual")
        return plan

    def _apply_bound_filters(
        self,
        plan: PlanNode,
        scope: Scope,
        compiler: Compiler,
        remaining: List[ast.Expr],
        bound: Set[str],
    ) -> PlanNode:
        ready = [c for c in remaining if referenced_aliases(c, scope) <= bound]
        for c in ready:
            remaining.remove(c)
        if ready:
            combined = conjoin(ready)
            assert combined is not None
            plan = Filter(plan, compiler.compile(combined))
        return plan

    def _plan_base_table(
        self,
        ref: ast.TableRef,
        scope: Scope,
        compiler: Compiler,
        remaining: List[ast.Expr],
        bound: Set[str],
    ) -> PlanNode:
        table = self.catalog.table(ref.name)
        alias = ref.alias.lower()
        for conjunct in remaining:
            indexable = self._match_indexable(conjunct, scope, alias)
            if indexable is None:
                continue
            # the probe expression must be evaluable before any table binds
            if referenced_aliases(indexable.other, scope):
                continue
            if indexable.radius_expr is not None and referenced_aliases(
                indexable.radius_expr, scope
            ):
                continue
            entry = self.catalog.index_for(ref.name, indexable.column)
            if entry is None:
                continue
            other_fn = compiler.compile(indexable.other)
            radius_fn = (
                compiler.compile(indexable.radius_expr)
                if indexable.radius_expr is not None
                else None
            )

            def probe(ctx: ExecContext,
                      other_fn=other_fn, radius_fn=radius_fn) -> Optional[Envelope]:
                return _probe_envelope(other_fn({}, ctx),
                                       radius_fn({}, ctx) if radius_fn else None)

            return IndexScan(table, alias, entry, probe, label="filter")
        return SeqScan(table, alias)

    def _plan_join(
        self,
        outer: PlanNode,
        ref: ast.TableRef,
        scope: Scope,
        compiler: Compiler,
        conjuncts: List[ast.Expr],
        bound: Set[str],
    ) -> PlanNode:
        table = self.catalog.table(ref.name)
        alias = ref.alias.lower()

        # cost-based spatial join on an indexable spatial conjunct
        for conjunct in conjuncts:
            indexable = self._match_indexable(conjunct, scope, alias)
            if indexable is None:
                continue
            if not referenced_aliases(indexable.other, scope) <= bound:
                continue
            if indexable.radius_expr is not None and not referenced_aliases(
                indexable.radius_expr, scope
            ) <= bound:
                continue
            plan = self._plan_spatial_join(
                outer, table, alias, scope, compiler, conjuncts, indexable
            )
            if plan is not None:
                return plan

        # try a hash join on an equality conjunct
        for conjunct in conjuncts:
            keys = self._match_equi(conjunct, scope, alias, bound)
            if keys is None:
                continue
            outer_key, inner_key = keys
            residual_list = [c for c in conjuncts if c is not conjunct]
            residual = conjoin(residual_list)
            plan = HashJoin(
                outer,
                SeqScan(table, alias),
                compiler.compile(outer_key),
                compiler.compile(inner_key),
                compiler.compile(residual) if residual is not None else None,
                label=f"{outer_key} = {inner_key}",
            )
            plan.est_rows = max(self._estimate_rows(outer), float(len(table)))
            return plan

        condition = conjoin(conjuncts)
        plan = NestedLoopJoin(
            outer,
            SeqScan(table, alias),
            compiler.compile(condition) if condition is not None else None,
        )
        product = self._estimate_rows(outer) * max(len(table), 1)
        plan.est_rows = product if condition is None else max(1.0, product / 3.0)
        return plan

    # -- cost-based spatial join selection ---------------------------------

    def _plan_spatial_join(
        self,
        outer: PlanNode,
        table: Table,
        alias: str,
        scope: Scope,
        compiler: Compiler,
        conjuncts: List[ast.Expr],
        indexable: _IndexableConjunct,
    ) -> Optional[PlanNode]:
        """Choose INLJ vs synchronized tree join vs PBSM for one spatial
        conjunct, by estimated cost (or the forced ``join_strategy``).

        Returns ``None`` when a plain nested loop is the best (or only)
        option, letting ``_plan_join`` fall through to its generic paths.
        """
        inner_entry = self.catalog.index_for(table.name, indexable.column)

        # ST_DWithin expands the probe envelope per row: only INLJ applies
        if indexable.radius_expr is not None:
            if inner_entry is None:
                return None
            return self._build_inlj(
                outer, table, alias, compiler, conjuncts, indexable,
                inner_entry, label="spatial",
            )

        # outer side of the conjunct: a bare indexed geometry column over
        # an unfiltered scan makes the synchronized tree join applicable
        outer_table: Optional[Table] = None
        outer_column: Optional[str] = None
        outer_alias: Optional[str] = None
        outer_entry = None
        other = indexable.other
        if isinstance(other, ast.ColumnRef):
            try:
                outer_alias, idx = scope.resolve(other)
            except SqlPlanError:
                outer_alias = None
            if outer_alias is not None:
                candidate = scope.table(outer_alias)
                if candidate.columns[idx].type is ColumnType.GEOMETRY:
                    outer_table = candidate
                    outer_column = candidate.columns[idx].name
                    outer_entry = self.catalog.index_for(
                        candidate.name, outer_column
                    )
        tree_ok = (
            inner_entry is not None
            and outer_entry is not None
            and isinstance(outer, SeqScan)
            and outer_table is not None
            and outer.alias == outer_alias
        )

        n_out = self._estimate_rows(outer)
        n_in = float(max(len(table), 1))
        inner_stats = table.stats.column(indexable.column)
        outer_stats = (
            outer_table.stats.column(outer_column)
            if outer_table is not None and outer_column is not None
            else None
        )
        pairs = self._estimate_pairs(n_out, outer_table, outer_stats,
                                     inner_stats, n_in)

        costs: Dict[str, float] = {}
        if inner_entry is not None:
            costs["inlj"] = (
                n_out * _COST_PROBE * math.log2(n_in + 2.0)
                + pairs * _COST_CAND_INLJ
            )
        if tree_ok:
            costs["tree"] = (
                _COST_TREE * (len(outer_table) + n_in) + pairs * _COST_CAND
            )
        costs["pbsm"] = _COST_PBSM * (n_out + n_in) + pairs * _COST_CAND
        if inner_entry is None and not tree_ok:
            costs["nlj"] = _COST_NLJ * n_out * n_in

        forced = self.join_strategy
        if forced == "nlj":
            return None
        if forced != "auto" and forced in costs:
            choice = forced
        else:
            choice = min(costs, key=costs.__getitem__)
        if choice == "nlj":
            return None
        label = (
            "spatial cost("
            + " ".join(f"{k}={v:.0f}" for k, v in sorted(costs.items()))
            + f") -> {choice}"
        )

        est = max(1.0, pairs * 0.5)
        if choice == "inlj":
            assert inner_entry is not None
            plan = self._build_inlj(
                outer, table, alias, compiler, conjuncts, indexable,
                inner_entry, label=label,
            )
            plan.est_rows = est
            return plan

        refine = self._make_refine(indexable)
        residual_list = [c for c in conjuncts if c is not indexable.conjunct]
        residual = conjoin(residual_list)
        residual_fn = (
            compiler.compile(residual) if residual is not None else None
        )
        if choice == "tree":
            assert outer_entry is not None and inner_entry is not None
            assert outer_table is not None
            plan = SpatialTreeJoin(
                outer_table, outer.alias, outer_entry,
                table, alias, inner_entry,
                refine, residual_fn, label=label,
            )
            plan.est_rows = est
            return plan

        inner_geom_fn = compiler.compile(
            ast.ColumnRef(indexable.column, table=alias)
        )
        plan = PBSMJoin(
            outer,
            SeqScan(table, alias),
            compiler.compile(indexable.other),
            inner_geom_fn,
            refine,
            residual_fn,
            label=label,
        )
        plan.est_rows = est
        return plan

    def _build_inlj(
        self,
        outer: PlanNode,
        table: Table,
        alias: str,
        compiler: Compiler,
        conjuncts: List[ast.Expr],
        indexable: _IndexableConjunct,
        entry,
        label: str,
    ) -> IndexNestedLoopJoin:
        other_fn = compiler.compile(indexable.other)
        radius_fn = (
            compiler.compile(indexable.radius_expr)
            if indexable.radius_expr is not None
            else None
        )

        def probe(row: Row, ctx: ExecContext,
                  other_fn=other_fn, radius_fn=radius_fn) -> Optional[Envelope]:
            return _probe_envelope(
                other_fn(row, ctx),
                radius_fn(row, ctx) if radius_fn else None,
            )

        residual = conjoin(conjuncts)
        residual_fn = (
            compiler.compile(residual) if residual is not None else None
        )
        return IndexNestedLoopJoin(
            outer, table, alias, entry, probe, residual_fn, label=label
        )

    def _make_refine(
        self, indexable: _IndexableConjunct
    ) -> Callable:
        """Direct profile refinement for ``(outer_geom, inner_geom, ctx)``.

        Candidate pairs from tree/PBSM joins already have intersecting
        envelopes, so an ``&&`` conjunct is trivially satisfied; named
        predicates re-evaluate through the profile with the conjunct's
        original argument order. The execution context rides along so
        degraded refinements are counted on the *running* statement's
        stats — plans (and these closures) are cached across executions.
        """
        conjunct = indexable.conjunct
        if isinstance(conjunct, ast.BinaryOp):  # '&&'
            return lambda outer_geom, inner_geom, ctx: True
        name = conjunct.name
        self.profile.check_supported(name)
        profile = self.profile
        if indexable.col_first:
            return lambda outer_geom, inner_geom, ctx: profile.refine_predicate(
                name, inner_geom, outer_geom, ctx.stats
            )
        return lambda outer_geom, inner_geom, ctx: profile.refine_predicate(
            name, outer_geom, inner_geom, ctx.stats
        )

    def _estimate_rows(self, plan: PlanNode) -> float:
        """Rough output-cardinality estimate for a built subplan."""
        est = getattr(plan, "est_rows", None)
        if est is not None:
            return float(est)
        if isinstance(plan, SeqScan):
            return float(max(len(plan.table), 1))
        if isinstance(plan, IndexScan):
            return float(max(1, len(plan.table) // 10))
        if isinstance(plan, Filter):
            return max(1.0, self._estimate_rows(plan.child) / 3.0)
        return 100.0

    @staticmethod
    def _estimate_pairs(
        n_out: float,
        outer_table: Optional[Table],
        outer_stats: Optional[ColumnStats],
        inner_stats: Optional[ColumnStats],
        n_in: float,
    ) -> float:
        """Expected candidate pairs for the spatial conjunct."""
        if outer_stats is not None:
            pairs = estimate_join_pairs(outer_stats, inner_stats)
            if outer_table is not None and len(outer_table) > 0:
                # outer side may be pre-filtered below the join
                pairs *= min(1.0, n_out / len(outer_table))
            return pairs
        # expression probe: only the inner side's density is known; assume
        # each probe envelope behaves like an average inner envelope
        if (
            inner_stats is None
            or inner_stats.count == 0
            or inner_stats.bounds is None
        ):
            return n_out
        width = inner_stats.bounds.width or 1.0
        height = inner_stats.bounds.height or 1.0
        p_x = min(1.0, 2.0 * inner_stats.avg_width / width)
        p_y = min(1.0, 2.0 * inner_stats.avg_height / height)
        return n_out * max(1.0, inner_stats.count * p_x * p_y)

    # -- conjunct pattern matching ---------------------------------------------

    def _match_indexable(
        self, conjunct: ast.Expr, scope: Scope, alias: str
    ) -> Optional[_IndexableConjunct]:
        """Recognise ``pred(t.geom, other)`` / ``other && t.geom`` shapes."""
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "&&":
            for col_side, other_side, col_first in (
                (conjunct.left, conjunct.right, True),
                (conjunct.right, conjunct.left, False),
            ):
                col = self._geometry_column(col_side, scope, alias)
                if col is not None:
                    return _IndexableConjunct(
                        conjunct, alias, col, other_side, col_first=col_first
                    )
            return None
        if not isinstance(conjunct, ast.FuncCall):
            return None
        name = conjunct.name
        if name == "st_dwithin" and len(conjunct.args) == 3:
            for col_side, other_side, col_first in (
                (conjunct.args[0], conjunct.args[1], True),
                (conjunct.args[1], conjunct.args[0], False),
            ):
                col = self._geometry_column(col_side, scope, alias)
                if col is not None:
                    return _IndexableConjunct(
                        conjunct, alias, col, other_side,
                        radius_expr=conjunct.args[2], col_first=col_first,
                    )
            return None
        if name not in _INDEXABLE_PREDICATES or len(conjunct.args) != 2:
            return None
        for col_side, other_side, col_first in (
            (conjunct.args[0], conjunct.args[1], True),
            (conjunct.args[1], conjunct.args[0], False),
        ):
            col = self._geometry_column(col_side, scope, alias)
            if col is not None:
                return _IndexableConjunct(
                    conjunct, alias, col, other_side, col_first=col_first
                )
        return None

    def _geometry_column(
        self, expr: ast.Expr, scope: Scope, alias: str
    ) -> Optional[str]:
        if not isinstance(expr, ast.ColumnRef):
            return None
        try:
            resolved_alias, idx = scope.resolve(expr)
        except SqlPlanError:
            return None
        if resolved_alias != alias:
            return None
        table = scope.table(resolved_alias)
        if table.columns[idx].type is not ColumnType.GEOMETRY:
            return None
        return table.columns[idx].name

    def _match_equi(
        self, conjunct: ast.Expr, scope: Scope, alias: str, bound: Set[str]
    ) -> Optional[Tuple[ast.Expr, ast.Expr]]:
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        left_refs = referenced_aliases(conjunct.left, scope)
        right_refs = referenced_aliases(conjunct.right, scope)
        if left_refs <= bound and right_refs == {alias}:
            return conjunct.left, conjunct.right
        if right_refs <= bound and left_refs == {alias}:
            return conjunct.right, conjunct.left
        return None

    # -- output: aggregation, projection, ordering --------------------------------

    def _plan_output(
        self, stmt: ast.Select, scope: Scope, plan: PlanNode
    ) -> Tuple[PlanNode, List[Tuple[str, Evaluator]], bool]:
        items = self._expand_stars(stmt.items, scope)
        has_aggregates = (
            bool(stmt.group_by)
            or any(contains_aggregate(i.expr) for i in items)
            or (stmt.having is not None and contains_aggregate(stmt.having))
        )
        if has_aggregates:
            return self._plan_aggregate(stmt, scope, plan, items)

        compiler = Compiler(scope, self.registry, self.profile)
        outputs = [
            (self._item_name(item, index), compiler.compile(item.expr))
            for index, item in enumerate(items)
        ]
        if stmt.having is not None:
            raise SqlPlanError("HAVING requires GROUP BY or aggregates")
        if stmt.order_by:
            keys = self._order_keys(stmt.order_by, items, compiler)
            plan = Sort(plan, keys)
        return Project(plan, outputs), outputs, bool(stmt.order_by)

    def _plan_aggregate(
        self,
        stmt: ast.Select,
        scope: Scope,
        plan: PlanNode,
        items: List[ast.SelectItem],
    ) -> Tuple[PlanNode, List[Tuple[str, Evaluator]], bool]:
        base_compiler = Compiler(scope, self.registry, self.profile)

        agg_nodes: List[ast.FuncCall] = []

        def collect(expr: ast.Expr) -> None:
            if isinstance(expr, ast.FuncCall):
                if is_aggregate_call(expr):
                    agg_nodes.append(expr)
                    return
                for arg in expr.args:
                    collect(arg)
            elif isinstance(expr, ast.BinaryOp):
                collect(expr.left)
                collect(expr.right)
            elif isinstance(expr, ast.UnaryOp):
                collect(expr.operand)
            elif isinstance(expr, ast.Between):
                for e in (expr.value, expr.low, expr.high):
                    collect(e)
            elif isinstance(expr, ast.InList):
                collect(expr.value)
                for option in expr.options:
                    collect(option)
            elif isinstance(expr, ast.IsNull):
                collect(expr.value)

        for item in items:
            collect(item.expr)
        if stmt.having is not None:
            collect(stmt.having)
        for order in stmt.order_by:
            collect(order.expr)

        agg_slots: Dict[int, int] = {}
        agg_specs: List[Tuple[str, Optional[Evaluator], bool]] = []
        for node in agg_nodes:
            if id(node) in agg_slots:
                continue
            agg_slots[id(node)] = len(agg_specs)
            if len(node.args) == 1 and isinstance(node.args[0], ast.Star):
                arg_fn: Optional[Evaluator] = None
            elif len(node.args) == 1:
                arg_fn = base_compiler.compile(node.args[0])
            else:
                raise SqlPlanError(
                    f"aggregate {node.name}() takes exactly one argument"
                )
            agg_specs.append((node.name, arg_fn, node.distinct))

        group_keys = [base_compiler.compile(e) for e in stmt.group_by]
        plan = Aggregate(
            plan, group_keys, agg_specs, always_one_group=not stmt.group_by
        )

        out_compiler = Compiler(
            scope, self.registry, self.profile, agg_slots=agg_slots
        )
        outputs = [
            (self._item_name(item, index), out_compiler.compile(item.expr))
            for index, item in enumerate(items)
        ]
        if stmt.having is not None:
            plan = Filter(plan, out_compiler.compile(stmt.having), "having")
        if stmt.order_by:
            keys = self._order_keys(stmt.order_by, items, out_compiler)
            plan = Sort(plan, keys)
        return Project(plan, outputs), outputs, bool(stmt.order_by)

    def _order_keys(
        self,
        order_by: List[ast.OrderItem],
        items: List[ast.SelectItem],
        compiler: Compiler,
    ) -> List[Tuple[Evaluator, bool]]:
        keys: List[Tuple[Evaluator, bool]] = []
        alias_map = {
            item.alias: item.expr for item in items if item.alias is not None
        }
        for order in order_by:
            expr = order.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(items):
                    raise SqlPlanError(
                        f"ORDER BY position {position} out of range"
                    )
                expr = items[position - 1].expr
            elif (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name in alias_map
            ):
                expr = alias_map[expr.name]
            keys.append((compiler.compile(expr), order.descending))
        return keys

    def _expand_stars(
        self, items: List[ast.SelectItem], scope: Scope
    ) -> List[ast.SelectItem]:
        expanded: List[ast.SelectItem] = []
        for item in items:
            if not isinstance(item.expr, ast.Star):
                expanded.append(item)
                continue
            aliases = (
                [item.expr.table.lower()] if item.expr.table else scope.aliases()
            )
            if not aliases:
                raise SqlPlanError("SELECT * requires a FROM clause")
            for alias in aliases:
                table = scope.table(alias)
                for column in table.columns:
                    expanded.append(
                        ast.SelectItem(
                            ast.ColumnRef(column.name, table=alias),
                            alias=column.name,
                        )
                    )
        return expanded

    @staticmethod
    def _item_name(item: ast.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        expr = item.expr
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        if isinstance(expr, ast.FuncCall):
            return expr.name
        return f"column{index + 1}"


def _probe_envelope(value, radius) -> Optional[Envelope]:
    if value is None:
        return None
    if not isinstance(value, Geometry):
        raise SqlPlanError(
            f"spatial index probe expects a geometry, got {value!r}"
        )
    envelope = value.envelope
    if radius is not None:
        envelope = envelope.expanded(float(radius))
    return envelope
