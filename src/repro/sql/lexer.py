"""SQL tokenizer.

Produces a flat token stream of keywords/identifiers, literals, operators
and punctuation. Identifiers are case-insensitive (lower-cased); keywords
are recognised by the parser, not here, so any keyword can still be used
as a column name when quoted with double quotes.
"""

from __future__ import annotations

import enum
from typing import List, NamedTuple

from repro.errors import SqlSyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAM = "param"
    END = "end"


class Token(NamedTuple):
    type: TokenType
    value: str
    pos: int

    def is_ident(self, *names: str) -> bool:
        return self.type is TokenType.IDENT and self.value in names


_OPERATORS = (
    "<->",  # KNN distance operator; must match before "<"
    "<=", ">=", "<>", "!=", "&&", "||", "=", "<", ">", "+", "-", "*", "/", "%",
)
_PUNCT = "(),.;"
_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and sql[i + 1] == "-":  # line comment
            while i < n and sql[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and sql[i + 1] == "*":  # block comment
            end = sql.find("*/", i + 2)
            if end < 0:
                raise SqlSyntaxError(f"unterminated comment at {i}")
            i = end + 2
            continue
        if ch == "'":
            j = i + 1
            parts: List[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError(f"unterminated string at {i}")
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # doubled quote escape
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch == '"':
            j = sql.find('"', i + 1)
            if j < 0:
                raise SqlSyntaxError(f"unterminated quoted identifier at {i}")
            tokens.append(Token(TokenType.IDENT, sql[i + 1 : j].lower(), i))
            i = j + 1
            continue
        if ch == "?":
            tokens.append(Token(TokenType.PARAM, "?", i))
            i += 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            j = i
            seen_dot = seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        matched_op = None
        for op in _OPERATORS:
            if sql.startswith(op, i):
                matched_op = op
                break
        if matched_op:
            tokens.append(Token(TokenType.OPERATOR, matched_op, i))
            i += len(matched_op)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        if ch in _IDENT_START:
            j = i + 1
            while j < n and sql[j] in _IDENT_CONT:
                j += 1
            tokens.append(Token(TokenType.IDENT, sql[i:j].lower(), i))
            i = j
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.END, "", n))
    return tokens
