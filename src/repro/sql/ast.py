"""Abstract syntax tree for the spatial SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


# -- expressions -------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # int, float, str, bool or None


@dataclass(frozen=True)
class Param(Expr):
    index: int  # zero-based position of the '?' placeholder


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None  # alias qualifier

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    table: Optional[str] = None  # alias.* or bare *


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # lower-case
    args: Tuple[Expr, ...]
    distinct: bool = False  # COUNT(DISTINCT x)


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # '=', '<>', '<', '<=', '>', '>=', '+', '-', '*', '/', '%',
    # 'and', 'or', 'like', '&&'
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-', 'not'
    operand: Expr


@dataclass(frozen=True)
class Between(Expr):
    value: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    value: Expr
    options: Tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    value: Expr
    negated: bool = False


# -- statements ---------------------------------------------------------------


class Statement:
    """Base class for statement nodes."""


@dataclass
class ColumnDef:
    name: str
    type_name: str


@dataclass
class CreateTable(Statement):
    name: str
    columns: List[ColumnDef]
    if_not_exists: bool = False


@dataclass
class CreateSpatialIndex(Statement):
    name: str
    table: str
    column: str
    using: Optional[str] = None  # index kind override


@dataclass
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass
class DropIndex(Statement):
    name: str
    if_exists: bool = False


@dataclass
class Analyze(Statement):
    table: Optional[str] = None  # None = every table in the catalog


@dataclass
class Begin(Statement):
    """BEGIN [WORK | TRANSACTION] / START TRANSACTION."""


@dataclass
class Commit(Statement):
    """COMMIT [WORK | TRANSACTION] / END [WORK | TRANSACTION]."""


@dataclass
class Rollback(Statement):
    """ROLLBACK [WORK | TRANSACTION]."""


@dataclass
class Insert(Statement):
    table: str
    columns: Optional[List[str]]  # None = all, in declaration order
    rows: List[List[Expr]]


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expr] = None


@dataclass
class Update(Statement):
    table: str
    assignments: List[Tuple[str, Expr]]  # (column, value expression)
    where: Optional[Expr] = None


@dataclass
class TableRef:
    name: str
    alias: str  # defaults to the table name


@dataclass
class Join:
    table: TableRef
    condition: Optional[Expr]  # None = CROSS JOIN


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class Select(Statement):
    items: List[SelectItem]
    source: Optional[TableRef] = None  # None = SELECT without FROM
    joins: List[Join] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    distinct: bool = False
