"""Execution machinery: compiled expressions and iterator plan operators.

Expressions compile to Python closures over ``(row, ctx)`` where ``row``
maps table aliases to stored tuples and ``ctx`` carries parameters, the
engine profile, the function registry and runtime statistics. Plans are
trees of operators, each exposing ``rows(ctx)`` as a restartable
generator — the executor is a plain Volcano-style iterator model.
"""

from __future__ import annotations

import math
import re
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SqlPlanError
from repro.faults import FAULTS
from repro.geometry.base import Envelope, Geometry
from repro.obs.waits import CPU_INDEX_PROBE, CPU_SORT, WAITS
from repro.sql import ast
from repro.sql.functions import (
    AGGREGATES,
    DUAL_ROLE_AGGREGATES,
    SPATIAL_PREDICATES,
    FunctionRegistry,
)
from repro.storage.catalog import Catalog, IndexEntry
from repro.storage.table import Table

Row = Dict[str, tuple]
Evaluator = Callable[[Row, "ExecContext"], Any]

#: expensive pure geometry functions memoised per statement execution
_CACHEABLE_FUNCTIONS = frozenset(
    {
        "st_buffer",
        "st_convexhull",
        "st_simplify",
        "st_union",
        "st_intersection",
        "st_difference",
        "st_symdifference",
        "st_centroid",
        "st_pointonsurface",
        "st_boundary",
    }
)


class Stats:
    """Runtime counters, exposed on the connection for the benchmark."""

    __slots__ = (
        "rows_scanned",
        "index_probes",
        "index_candidates",
        "pages_read",
        "join_pairs_considered",
        "join_pairs_emitted",
        "partitions_built",
        "plan_cache_hits",
        "plan_cache_misses",
        "degraded_results",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.rows_scanned = 0
        self.index_probes = 0
        self.index_candidates = 0
        self.pages_read = 0
        self.join_pairs_considered = 0
        self.join_pairs_emitted = 0
        self.partitions_built = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.degraded_results = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "rows_scanned": self.rows_scanned,
            "index_probes": self.index_probes,
            "index_candidates": self.index_candidates,
            "pages_read": self.pages_read,
            "join_pairs_considered": self.join_pairs_considered,
            "join_pairs_emitted": self.join_pairs_emitted,
            "partitions_built": self.partitions_built,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "degraded_results": self.degraded_results,
        }

    def merge(self, other: "Stats") -> None:
        """Fold a per-statement shard into this (shared) Stats object —
        the caller serialises concurrent merges with a lock."""
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


class ExecContext:
    """Everything an operator needs at run time."""

    __slots__ = ("params", "profile", "registry", "catalog", "stats",
                 "cache", "guard", "snapshot")

    def __init__(self, params, profile, registry: FunctionRegistry,
                 catalog: Catalog, stats: Stats, guard=None, snapshot=None):
        self.params = params
        self.profile = profile
        self.registry = registry
        self.catalog = catalog
        self.stats = stats
        # per-statement memo for expensive pure geometry functions, keyed
        # by (function, argument identities) — geometries are immutable
        self.cache: Dict[tuple, Any] = {}
        #: armed :class:`repro.guard.ExecutionGuard` (None = no limits);
        #: operators skip all accounting when it is None
        self.guard = guard
        #: MVCC :class:`repro.txn.Snapshot` (None = no open transactions
        #: anywhere); scans skip visibility checks when it is None or the
        #: scanned table carries no live version stamps
        self.snapshot = snapshot


class Scope:
    """Alias → table map used during compilation for name resolution."""

    def __init__(self) -> None:
        self._aliases: Dict[str, Table] = {}
        self.order: List[str] = []

    def add(self, alias: str, table: Table) -> None:
        key = alias.lower()
        if key in self._aliases:
            raise SqlPlanError(f"duplicate table alias {alias!r}")
        self._aliases[key] = table
        self.order.append(key)

    def resolve(self, ref: ast.ColumnRef) -> Tuple[str, int]:
        if ref.table is not None:
            alias = ref.table.lower()
            if alias not in self._aliases:
                raise SqlPlanError(f"unknown table alias {ref.table!r}")
            return alias, self._aliases[alias].column_index(ref.name)
        hits = [
            (alias, table.column_index(ref.name))
            for alias, table in self._aliases.items()
            if table.has_column(ref.name)
        ]
        if not hits:
            raise SqlPlanError(f"unknown column {ref.name!r}")
        if len(hits) > 1:
            raise SqlPlanError(f"ambiguous column {ref.name!r}")
        return hits[0]

    def table(self, alias: str) -> Table:
        return self._aliases[alias.lower()]

    def aliases(self) -> List[str]:
        return list(self.order)


# ---------------------------------------------------------------------------
# expression compilation
# ---------------------------------------------------------------------------


def _like_matcher(pattern: str) -> Callable[[str], bool]:
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    compiled = re.compile(f"^{regex}$", re.IGNORECASE | re.DOTALL)
    return lambda text: compiled.match(text) is not None


def referenced_aliases(expr: ast.Expr, scope: Scope) -> set:
    """All table aliases an expression touches (for placement decisions)."""
    found: set = set()

    def walk(node: ast.Expr) -> None:
        if isinstance(node, ast.ColumnRef):
            alias, _idx = scope.resolve(node)
            found.add(alias)
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.Between):
            walk(node.value)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.InList):
            walk(node.value)
            for option in node.options:
                walk(option)
        elif isinstance(node, ast.IsNull):
            walk(node.value)
        elif isinstance(node, ast.Star):
            raise SqlPlanError("'*' is only valid in the select list or COUNT(*)")

    walk(expr)
    return found


def contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.FuncCall):
        if is_aggregate_call(expr):
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, ast.Between):
        return any(
            contains_aggregate(e) for e in (expr.value, expr.low, expr.high)
        )
    if isinstance(expr, ast.InList):
        return contains_aggregate(expr.value) or any(
            contains_aggregate(o) for o in expr.options
        )
    if isinstance(expr, ast.IsNull):
        return contains_aggregate(expr.value)
    return False


def is_aggregate_call(expr: ast.FuncCall) -> bool:
    name = expr.name
    if name not in AGGREGATES:
        return False
    if name in DUAL_ROLE_AGGREGATES:
        return len(expr.args) == 1
    return True


class Compiler:
    """Compiles AST expressions into closures."""

    def __init__(self, scope: Scope, registry: FunctionRegistry, profile,
                 agg_slots: Optional[Dict[int, int]] = None):
        self.scope = scope
        self.registry = registry
        self.profile = profile
        # id(FuncCall-node) -> slot index in the aggregate row suffix
        self.agg_slots = agg_slots

    def compile(self, expr: ast.Expr) -> Evaluator:
        if isinstance(expr, ast.Literal):
            value = expr.value
            return lambda row, ctx: value
        if isinstance(expr, ast.Param):
            index = expr.index
            return lambda row, ctx: ctx.params[index]
        if isinstance(expr, ast.ColumnRef):
            alias, idx = self.scope.resolve(expr)
            return lambda row, ctx: row[alias][idx]
        if isinstance(expr, ast.FuncCall):
            return self._compile_func(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            operand = self.compile(expr.operand)
            if expr.op == "-":
                return lambda row, ctx: (
                    None if (v := operand(row, ctx)) is None else -v
                )
            if expr.op == "not":
                return lambda row, ctx: (
                    None if (v := operand(row, ctx)) is None else not v
                )
            raise SqlPlanError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.Between):
            value = self.compile(expr.value)
            low = self.compile(expr.low)
            high = self.compile(expr.high)
            negated = expr.negated

            def between(row: Row, ctx: ExecContext) -> Optional[bool]:
                v = value(row, ctx)
                lo = low(row, ctx)
                hi = high(row, ctx)
                if v is None or lo is None or hi is None:
                    return None
                result = lo <= v <= hi
                return not result if negated else result

            return between
        if isinstance(expr, ast.InList):
            value = self.compile(expr.value)
            options = [self.compile(o) for o in expr.options]
            negated = expr.negated

            def in_list(row: Row, ctx: ExecContext) -> Optional[bool]:
                v = value(row, ctx)
                if v is None:
                    return None
                result = any(v == o(row, ctx) for o in options)
                return not result if negated else result

            return in_list
        if isinstance(expr, ast.IsNull):
            value = self.compile(expr.value)
            negated = expr.negated
            return lambda row, ctx: (value(row, ctx) is None) != negated
        if isinstance(expr, ast.Star):
            raise SqlPlanError("'*' is only valid in the select list or COUNT(*)")
        raise SqlPlanError(f"cannot compile {type(expr).__name__}")

    def _compile_func(self, expr: ast.FuncCall) -> Evaluator:
        if self.agg_slots is not None and id(expr) in self.agg_slots:
            slot = self.agg_slots[id(expr)]
            return lambda row, ctx: row["__agg__"][slot]
        if is_aggregate_call(expr):
            raise SqlPlanError(
                f"aggregate {expr.name}() not allowed in this clause"
            )
        name = expr.name
        if name in SPATIAL_PREDICATES:
            self.profile.check_supported(name)
            if len(expr.args) != 2:
                raise SqlPlanError(f"{name} takes exactly two arguments")
            arg_a = self.compile(expr.args[0])
            arg_b = self.compile(expr.args[1])

            def predicate(row: Row, ctx: ExecContext) -> Optional[bool]:
                ga = arg_a(row, ctx)
                gb = arg_b(row, ctx)
                if ga is None or gb is None:
                    return None
                if not isinstance(ga, Geometry) or not isinstance(gb, Geometry):
                    raise SqlPlanError(f"{name} expects geometry arguments")
                return ctx.profile.refine_predicate(name, ga, gb, ctx.stats)

            return predicate
        if name.startswith("st_"):
            self.profile.check_supported(name)
        impl = self.registry.lookup(name)
        arg_fns = [self.compile(a) for a in expr.args]

        if name in _CACHEABLE_FUNCTIONS:
            def cached_call(row: Row, ctx: ExecContext) -> Any:
                args = [fn(row, ctx) for fn in arg_fns]
                key = (name,) + tuple(
                    id(a) if isinstance(a, Geometry) else a for a in args
                )
                try:
                    return ctx.cache[key]
                except KeyError:
                    value = impl(*args)
                    ctx.cache[key] = value
                    return value

            return cached_call

        def call(row: Row, ctx: ExecContext) -> Any:
            return impl(*[fn(row, ctx) for fn in arg_fns])

        return call

    def _compile_binary(self, expr: ast.BinaryOp) -> Evaluator:
        op = expr.op
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op == "and":
            return lambda row, ctx: _and3(left(row, ctx), right(row, ctx))
        if op == "or":
            return lambda row, ctx: _or3(left(row, ctx), right(row, ctx))
        if op == "like":
            def like(row: Row, ctx: ExecContext) -> Optional[bool]:
                text = left(row, ctx)
                pattern = right(row, ctx)
                if text is None or pattern is None:
                    return None
                return _like_matcher(str(pattern))(str(text))

            return like
        if op == "&&":
            def env_overlap(row: Row, ctx: ExecContext) -> Optional[bool]:
                a = left(row, ctx)
                b = right(row, ctx)
                if a is None or b is None:
                    return None
                return _as_envelope(a).intersects(_as_envelope(b))

            return env_overlap
        if op == "<->":
            def knn_distance(row: Row, ctx: ExecContext) -> Optional[float]:
                a = left(row, ctx)
                b = right(row, ctx)
                if a is None or b is None:
                    return None
                if not isinstance(a, Geometry) or not isinstance(b, Geometry):
                    raise SqlPlanError("'<->' expects geometry operands")
                from repro.algorithms.distance import distance

                return distance(a, b)

            return knn_distance
        if op == "||":
            return lambda row, ctx: _concat(left(row, ctx), right(row, ctx))

        simple = {
            "=": lambda a, b: a == b,
            "<>": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b,
            "%": lambda a, b: a % b,
        }
        if op not in simple:
            raise SqlPlanError(f"unknown operator {op!r}")
        fn = simple[op]

        def binary(row: Row, ctx: ExecContext) -> Any:
            a = left(row, ctx)
            b = right(row, ctx)
            if a is None or b is None:
                return None
            return fn(a, b)

        return binary


def _and3(a: Any, b: Any) -> Optional[bool]:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return bool(a) and bool(b)


def _or3(a: Any, b: Any) -> Optional[bool]:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return bool(a) or bool(b)


def _concat(a: Any, b: Any) -> Optional[str]:
    if a is None or b is None:
        return None
    return str(a) + str(b)


def _as_envelope(value: Any) -> Envelope:
    if isinstance(value, Geometry):
        return value.envelope
    if isinstance(value, Envelope):
        return value
    raise SqlPlanError(f"expected a geometry for '&&', got {value!r}")


# ---------------------------------------------------------------------------
# plan operators
# ---------------------------------------------------------------------------


class PlanNode:
    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        raise NotImplementedError

    def explain(self, depth: int = 0) -> List[str]:
        lines = ["  " * depth + self.describe()]
        for child in self.children():
            lines.extend(child.explain(depth + 1))
        return lines

    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> Sequence["PlanNode"]:
        return ()


class SpanNode(PlanNode):
    """Wraps a plan node to record a :class:`repro.obs.span.Span`.

    Each wrapper measures emitted rows, cumulative wall time and the
    *inclusive* delta of the engine counters over the operator's
    lifetime (children included; exclusive figures are derived from the
    span tree). This is the machinery behind ``EXPLAIN ANALYZE``,
    ``Database.last_trace()`` and the trace exporters. Wrapping mutates
    the inner tree's child pointers, so traced executions always plan
    afresh rather than reusing a cached plan.
    """

    __slots__ = ("inner", "span", "_children", "_on_close")

    def __init__(self, inner: PlanNode, on_close=None):
        from repro.obs.span import Span

        self.inner = inner
        self._on_close = on_close
        self._children = [SpanNode(c, on_close) for c in inner.children()]
        _graft_children(self.inner, self._children)
        self.span = Span(
            type(inner).__name__,
            inner.describe(),
            [child.span for child in self._children],
        )

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        import time as _time

        perf_counter = _time.perf_counter
        span = self.span
        stats = ctx.stats
        start = perf_counter()
        span.begin(start, stats.snapshot())
        emitted = 0
        elapsed = 0.0
        inner_rows = self.inner.rows(ctx)
        try:
            for row in inner_rows:
                elapsed += perf_counter() - start
                emitted += 1
                yield row
                start = perf_counter()
            elapsed += perf_counter() - start
        finally:
            # close the inner iterator first so every descendant flushes
            # its buffered counters before this span snapshots them
            close = getattr(inner_rows, "close", None)
            if close is not None:
                close()
            span.finish(emitted, elapsed, stats.snapshot())
            if self._on_close is not None:
                self._on_close(span)

    def describe(self) -> str:
        span = self.span
        extras = "".join(
            f", {key}={value}"
            for key, value in sorted(span.exclusive_counters().items())
        )
        return (
            f"{span.detail}  "
            f"(rows={span.rows}, time={span.seconds * 1e3:.2f}ms{extras})"
        )

    def children(self) -> Sequence[PlanNode]:
        return self._children


def _graft_children(node: PlanNode, wrapped: List["SpanNode"]) -> None:
    """Point a node's child references at the instrumented wrappers."""
    originals = list(node.children())
    for attr in ("child", "outer", "inner"):
        if hasattr(node, attr):
            current = getattr(node, attr)
            for original, wrapper in zip(originals, wrapped):
                if current is original:
                    setattr(node, attr, wrapper)


class OneRow(PlanNode):
    """Source for SELECT without FROM."""

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        yield {}

    def describe(self) -> str:
        return "Result (no table)"


class SeqScan(PlanNode):
    def __init__(self, table: Table, alias: str):
        self.table = table
        self.alias = alias

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        stats = ctx.stats
        stats.pages_read += self.table.page_count
        self.table.seq_scans += 1
        alias = self.alias
        guard = ctx.guard
        snapshot = ctx.snapshot
        scanned = 0
        try:
            if snapshot is not None and self.table.mvcc_versions:
                xmin, xmax = self.table.version_arrays()
                row_visible = snapshot.row_visible
                for row_id, row in enumerate(self.table.rows):
                    if row is None:
                        continue
                    if not row_visible(xmin[row_id], xmax[row_id]):
                        continue
                    scanned += 1
                    if guard is not None:
                        guard.tick()
                    yield {alias: row}
                return
            for row in self.table.rows:
                if row is not None:
                    scanned += 1
                    if guard is not None:
                        guard.tick()
                    yield {alias: row}
        finally:
            stats.rows_scanned += scanned

    def describe(self) -> str:
        return f"SeqScan {self.table.name} AS {self.alias}"


class IndexScan(PlanNode):
    """Envelope probe of a spatial index, yielding candidate rows.

    The probe envelope comes from a compiled expression evaluated once per
    execution (it may reference parameters but no tables).
    """

    def __init__(
        self,
        table: Table,
        alias: str,
        entry: IndexEntry,
        probe: Callable[[ExecContext], Optional[Envelope]],
        label: str = "",
    ):
        self.table = table
        self.alias = alias
        self.entry = entry
        self.probe = probe
        self.label = label

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        envelope = self.probe(ctx)
        if envelope is None:
            return
        if FAULTS.active:
            FAULTS.hit("index.probe")
        stats = ctx.stats
        stats.index_probes += 1
        self.entry.probes += 1
        if WAITS.enabled:
            _started = time.perf_counter()
            row_ids = self.entry.index.search(envelope)
            WAITS.record(CPU_INDEX_PROBE, time.perf_counter() - _started)
        else:
            row_ids = self.entry.index.search(envelope)
        stats.index_candidates += len(row_ids)
        per_page = self.table.ROWS_PER_PAGE
        stats.pages_read += len({rid // per_page for rid in row_ids})
        alias = self.alias
        heap = self.table.rows
        guard = ctx.guard
        snapshot = ctx.snapshot
        scanned = 0
        try:
            if snapshot is not None and self.table.mvcc_versions:
                # probes apply the same visibility rule as scans: the
                # index keeps superseded versions until vacuum, and may
                # hold uncommitted inserts from open transactions
                row_visible = self.table.row_visible
                for row_id in row_ids:
                    row = heap[row_id]
                    if row is None or not row_visible(row_id, snapshot):
                        continue
                    scanned += 1
                    if guard is not None:
                        guard.tick()
                    yield {alias: row}
                return
            for row_id in row_ids:
                scanned += 1
                if guard is not None:
                    guard.tick()
                yield {alias: heap[row_id]}
        finally:
            stats.rows_scanned += scanned

    def describe(self) -> str:
        return (
            f"IndexScan {self.table.name} AS {self.alias} "
            f"USING {self.entry.name} ({self.entry.index.kind}) {self.label}"
        )


class KNNScan(PlanNode):
    """Exact k-nearest-neighbour scan (Hjaltason-Samet best-first).

    Streams index entries in envelope-distance order (a lower bound on the
    exact geometry distance) and holds back each candidate until no
    unseen entry could beat it — yielding rows in *exact* distance order
    without ranking the whole table. Serves ``ORDER BY geom <-> <point>
    LIMIT k`` over an indexed column.
    """

    def __init__(
        self,
        table,
        alias: str,
        entry,
        geom_index: int,
        probe: Callable[[ExecContext], Any],
        k_fn: Callable[[ExecContext], int],
    ):
        self.table = table
        self.alias = alias
        self.entry = entry
        self.geom_index = geom_index
        self.probe = probe
        self.k_fn = k_fn

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        import heapq

        from repro.algorithms.distance import distance as exact_distance
        from repro.geometry.point import Point

        probe_geom = self.probe(ctx)
        if probe_geom is None:
            return
        if not isinstance(probe_geom, Geometry):
            raise SqlPlanError("KNN probe must be a geometry")
        k = self.k_fn(ctx)
        if k <= 0:
            return
        if not isinstance(probe_geom, Point):
            # envelope-to-point bounds only hold for point probes; fall
            # back to an exact full ranking for other probe geometries
            ranked = sorted(
                (
                    (exact_distance(row[self.geom_index], probe_geom), row_id)
                    for row_id, row in self.table.scan(ctx.snapshot)
                    if isinstance(row[self.geom_index], Geometry)
                ),
            )
            for _d, row_id in ranked[:k]:
                ctx.stats.rows_scanned += 1
                yield {self.alias: self.table.get_row(row_id)}
            return
        cx, cy = probe_geom.x, probe_geom.y
        ctx.stats.index_probes += 1
        self.entry.probes += 1
        guard = ctx.guard
        snapshot = ctx.snapshot
        versioned = snapshot is not None and self.table.mvcc_versions
        emitted = 0
        pending: List[tuple] = []  # (exact_dist, seq, row_id)
        seq = 0
        for row_id, lower_bound in self.entry.index.nearest_iter(cx, cy):
            if guard is not None:
                guard.tick()
            if versioned and not self.table.row_visible(row_id, snapshot):
                continue
            while pending and pending[0][0] <= lower_bound:
                _d, _s, ready_id = heapq.heappop(pending)
                yield {self.alias: self.table.get_row(ready_id)}
                emitted += 1
                if emitted >= k:
                    return
            ctx.stats.rows_scanned += 1
            row = self.table.get_row(row_id)
            geom = row[self.geom_index]
            if not isinstance(geom, Geometry):
                continue
            d = exact_distance(geom, probe_geom)
            seq += 1
            heapq.heappush(pending, (d, seq, row_id))
        while pending and emitted < k:
            _d, _s, ready_id = heapq.heappop(pending)
            yield {self.alias: self.table.get_row(ready_id)}
            emitted += 1

    def describe(self) -> str:
        return (
            f"KNNScan {self.table.name} AS {self.alias} "
            f"USING {self.entry.name} ({self.entry.index.kind})"
        )


class Filter(PlanNode):
    def __init__(self, child: PlanNode, predicate: Evaluator, label: str = ""):
        self.child = child
        self.predicate = predicate
        self.label = label

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.rows(ctx):
            if predicate(row, ctx) is True:
                yield row

    def describe(self) -> str:
        return f"Filter {self.label}".rstrip()

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


class NestedLoopJoin(PlanNode):
    """Materialising nested loop (inner side buffered once)."""

    def __init__(self, outer: PlanNode, inner: PlanNode,
                 condition: Optional[Evaluator], label: str = ""):
        self.outer = outer
        self.inner = inner
        self.condition = condition
        self.label = label

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        inner_rows = list(self.inner.rows(ctx))
        guard = ctx.guard
        if guard is not None and inner_rows:
            guard.reserve(len(inner_rows), inner_rows[0])
        condition = self.condition
        stats = ctx.stats
        considered = 0
        emitted = 0
        try:
            if condition is None:
                for outer_row in self.outer.rows(ctx):
                    considered += len(inner_rows)
                    emitted += len(inner_rows)
                    if guard is not None:
                        guard.tick(len(inner_rows))
                    for inner_row in inner_rows:
                        yield {**outer_row, **inner_row}
                return
            # evaluate the condition against one reused scratch dict and
            # only copy it for rows that actually survive
            scratch: Row = {}
            for outer_row in self.outer.rows(ctx):
                considered += len(inner_rows)
                for inner_row in inner_rows:
                    if guard is not None:
                        guard.tick()
                    scratch.clear()
                    scratch.update(outer_row)
                    scratch.update(inner_row)
                    if condition(scratch, ctx) is True:
                        emitted += 1
                        yield dict(scratch)
        finally:
            stats.join_pairs_considered += considered
            stats.join_pairs_emitted += emitted

    def describe(self) -> str:
        return f"NestedLoopJoin {self.label}".rstrip()

    def children(self) -> Sequence[PlanNode]:
        return (self.outer, self.inner)


class HashJoin(PlanNode):
    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        outer_key: Evaluator,
        inner_key: Evaluator,
        residual: Optional[Evaluator] = None,
        label: str = "",
    ):
        self.outer = outer
        self.inner = inner
        self.outer_key = outer_key
        self.inner_key = inner_key
        self.residual = residual
        self.label = label

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        guard = ctx.guard
        buckets: Dict[Any, List[Row]] = {}
        for inner_row in self.inner.rows(ctx):
            key = self.inner_key(inner_row, ctx)
            if key is None:
                continue
            if guard is not None:
                guard.reserve(1, inner_row)
            buckets.setdefault(key, []).append(inner_row)
        residual = self.residual
        for outer_row in self.outer.rows(ctx):
            key = self.outer_key(outer_row, ctx)
            if key is None:
                continue
            for inner_row in buckets.get(key, ()):
                merged = {**outer_row, **inner_row}
                if residual is None or residual(merged, ctx) is True:
                    yield merged

    def describe(self) -> str:
        return f"HashJoin {self.label}".rstrip()

    def children(self) -> Sequence[PlanNode]:
        return (self.outer, self.inner)


class IndexNestedLoopJoin(PlanNode):
    """For each outer row, probe the inner table's spatial index."""

    def __init__(
        self,
        outer: PlanNode,
        table: Table,
        alias: str,
        entry: IndexEntry,
        probe: Callable[[Row, ExecContext], Optional[Envelope]],
        residual: Optional[Evaluator],
        label: str = "",
    ):
        self.outer = outer
        self.table = table
        self.alias = alias
        self.entry = entry
        self.probe = probe
        self.residual = residual
        self.label = label

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        alias = self.alias
        residual = self.residual
        probe = self.probe
        search = self.entry.index.search
        heap = self.table.rows
        stats = ctx.stats
        guard = ctx.guard
        snapshot = ctx.snapshot
        row_visible = (
            self.table.row_visible
            if snapshot is not None and self.table.mvcc_versions else None
        )
        faults_hit = FAULTS.hit
        # read once per execution: per-probe timing only when the wait
        # monitor was on as the loop started
        waits_on = WAITS.enabled
        probes = 0
        candidates = 0
        emitted = 0
        try:
            for outer_row in self.outer.rows(ctx):
                envelope = probe(outer_row, ctx)
                if envelope is None:
                    continue
                if FAULTS.active:
                    faults_hit("index.probe")
                probes += 1
                if waits_on:
                    _started = time.perf_counter()
                    row_ids = search(envelope)
                    WAITS.record(
                        CPU_INDEX_PROBE, time.perf_counter() - _started
                    )
                else:
                    row_ids = search(envelope)
                candidates += len(row_ids)
                for row_id in row_ids:
                    if guard is not None:
                        guard.tick()
                    inner_row = heap[row_id]
                    if inner_row is None or (
                        row_visible is not None
                        and not row_visible(row_id, snapshot)
                    ):
                        continue
                    merged = dict(outer_row)
                    merged[alias] = inner_row
                    if residual is None or residual(merged, ctx) is True:
                        emitted += 1
                        yield merged
        finally:
            stats.index_probes += probes
            stats.index_candidates += candidates
            stats.rows_scanned += candidates
            stats.join_pairs_considered += candidates
            stats.join_pairs_emitted += emitted
            self.entry.probes += probes

    def describe(self) -> str:
        return (
            f"IndexNestedLoopJoin {self.table.name} AS {self.alias} "
            f"USING {self.entry.name} {self.label}"
        )

    def children(self) -> Sequence[PlanNode]:
        return (self.outer,)


class SpatialTreeJoin(PlanNode):
    """Synchronized index-traversal join of two indexed tables.

    Both sides must be bare table scans with spatial indexes on the
    joined geometry columns; candidate pairs come from
    ``SpatialIndex.join`` (a lockstep descent of both trees), so neither
    side is re-probed per row. The spatial predicate is refined directly
    through the engine profile — preserving exact / MBR-only / DE-9IM
    semantics — and any remaining join conjuncts run as a compiled
    residual.
    """

    def __init__(
        self,
        outer_table: Table,
        outer_alias: str,
        outer_entry: IndexEntry,
        inner_table: Table,
        inner_alias: str,
        inner_entry: IndexEntry,
        refine: Callable[[Any, Any, "ExecContext"], Optional[bool]],
        residual: Optional[Evaluator],
        label: str = "",
    ):
        self.outer_table = outer_table
        self.outer_alias = outer_alias
        self.outer_entry = outer_entry
        self.inner_table = inner_table
        self.inner_alias = inner_alias
        self.inner_entry = inner_entry
        self.refine = refine
        self.residual = residual
        self.label = label
        self._outer_geom = outer_table.column_index(outer_entry.column_name)
        self._inner_geom = inner_table.column_index(inner_entry.column_name)

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        stats = ctx.stats
        self.outer_entry.probes += 1
        self.inner_entry.probes += 1
        outer_heap = self.outer_table.rows
        inner_heap = self.inner_table.rows
        outer_alias = self.outer_alias
        inner_alias = self.inner_alias
        outer_geom = self._outer_geom
        inner_geom = self._inner_geom
        refine = self.refine
        residual = self.residual
        guard = ctx.guard
        snapshot = ctx.snapshot
        outer_visible = (
            self.outer_table.row_visible
            if snapshot is not None and self.outer_table.mvcc_versions
            else None
        )
        inner_visible = (
            self.inner_table.row_visible
            if snapshot is not None and self.inner_table.mvcc_versions
            else None
        )
        considered = 0
        emitted = 0
        try:
            for outer_id, inner_id in self.outer_entry.index.join(
                self.inner_entry.index
            ):
                considered += 1
                if guard is not None:
                    guard.tick()
                outer_row = outer_heap[outer_id]
                inner_row = inner_heap[inner_id]
                if outer_row is None or inner_row is None:
                    continue
                if outer_visible is not None and not outer_visible(
                    outer_id, snapshot
                ):
                    continue
                if inner_visible is not None and not inner_visible(
                    inner_id, snapshot
                ):
                    continue
                if refine(
                    outer_row[outer_geom], inner_row[inner_geom], ctx
                ) is not True:
                    continue
                merged = {outer_alias: outer_row, inner_alias: inner_row}
                if residual is None or residual(merged, ctx) is True:
                    emitted += 1
                    yield merged
        finally:
            stats.join_pairs_considered += considered
            stats.join_pairs_emitted += emitted
            stats.rows_scanned += considered

    def describe(self) -> str:
        return (
            f"SpatialTreeJoin {self.outer_table.name} AS {self.outer_alias} "
            f"x {self.inner_table.name} AS {self.inner_alias} "
            f"USING ({self.outer_entry.name}, {self.inner_entry.name}) "
            f"{self.label}"
        ).rstrip()


class PBSMJoin(PlanNode):
    """Partition-based spatial-merge join (Patel & DeWitt).

    Materialises both inputs, grid-partitions their envelopes over the
    joint extent, plane-sweeps within each cell, and deduplicates pairs
    replicated into several cells with the reference-point test (a pair
    counts only in the cell owning the top-left corner of its envelope
    intersection). Needs no index on either side.
    """

    #: aim for roughly this many items per grid cell
    TARGET_PER_CELL = 32
    MAX_CELLS_PER_AXIS = 64

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        outer_geom: Evaluator,
        inner_geom: Evaluator,
        refine: Callable[[Any, Any, "ExecContext"], Optional[bool]],
        residual: Optional[Evaluator],
        label: str = "",
    ):
        self.outer = outer
        self.inner = inner
        self.outer_geom = outer_geom
        self.inner_geom = inner_geom
        self.refine = refine
        self.residual = residual
        self.label = label

    def _materialise(
        self, plan: PlanNode, geom_fn: Evaluator, ctx: ExecContext
    ) -> List[Tuple[Envelope, Any, Row]]:
        items = []
        guard = ctx.guard
        for row in plan.rows(ctx):
            geom = geom_fn(row, ctx)
            if geom is None:
                continue
            if not isinstance(geom, Geometry):
                raise SqlPlanError(
                    f"spatial join expects geometry operands, got {geom!r}"
                )
            if guard is not None:
                guard.reserve(1, row)
            items.append((geom.envelope, geom, row))
        return items

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        outer_items = self._materialise(self.outer, self.outer_geom, ctx)
        inner_items = self._materialise(self.inner, self.inner_geom, ctx)
        if not outer_items or not inner_items:
            return
        universe = Envelope.union_all(
            [env for env, _g, _r in outer_items]
            + [env for env, _g, _r in inner_items]
        )
        total = len(outer_items) + len(inner_items)
        per_axis = max(
            1,
            min(
                self.MAX_CELLS_PER_AXIS,
                int(math.sqrt(total / self.TARGET_PER_CELL)) + 1,
            ),
        )
        min_x, min_y = universe.min_x, universe.min_y
        cell_w = (universe.width / per_axis) or 1.0
        cell_h = (universe.height / per_axis) or 1.0
        last = per_axis - 1

        cells: Dict[Tuple[int, int], Tuple[list, list]] = {}
        for side, items in ((0, outer_items), (1, inner_items)):
            for item in items:
                env = item[0]
                x0 = min(int((env.min_x - min_x) / cell_w), last)
                x1 = min(int((env.max_x - min_x) / cell_w), last)
                y0 = min(int((env.min_y - min_y) / cell_h), last)
                y1 = min(int((env.max_y - min_y) / cell_h), last)
                for gx in range(x0, x1 + 1):
                    for gy in range(y0, y1 + 1):
                        bucket = cells.get((gx, gy))
                        if bucket is None:
                            bucket = ([], [])
                            cells[(gx, gy)] = bucket
                        bucket[side].append(item)

        stats = ctx.stats
        stats.partitions_built += len(cells)
        refine = self.refine
        residual = self.residual
        guard = ctx.guard
        considered = 0
        emitted = 0
        try:
            for (gx, gy), (cell_outer, cell_inner) in cells.items():
                if not cell_outer or not cell_inner:
                    continue
                cell_outer.sort(key=_env_min_x)
                cell_inner.sort(key=_env_min_x)
                for ea, ga, row_a, eb, gb, row_b in _plane_sweep(
                    cell_outer, cell_inner
                ):
                    if guard is not None:
                        guard.tick()
                    # reference-point dedup for pairs spanning cells
                    rx = ea.min_x if ea.min_x > eb.min_x else eb.min_x
                    ry = ea.min_y if ea.min_y > eb.min_y else eb.min_y
                    if min(int((rx - min_x) / cell_w), last) != gx:
                        continue
                    if min(int((ry - min_y) / cell_h), last) != gy:
                        continue
                    considered += 1
                    if refine(ga, gb, ctx) is not True:
                        continue
                    merged = {**row_a, **row_b}
                    if residual is None or residual(merged, ctx) is True:
                        emitted += 1
                        yield merged
        finally:
            stats.join_pairs_considered += considered
            stats.join_pairs_emitted += emitted

    def describe(self) -> str:
        return f"PBSMJoin {self.label}".rstrip()

    def children(self) -> Sequence[PlanNode]:
        return (self.outer, self.inner)


def _env_min_x(item: Tuple[Envelope, Any, Row]) -> float:
    return item[0].min_x


def _plane_sweep(side_a: list, side_b: list):
    """Forward plane sweep over two min_x-sorted envelope lists.

    Yields each x/y-overlapping pair exactly once: the item with the
    smaller ``min_x`` scans forward through the other list while the x
    ranges still overlap.
    """
    i = 0
    j = 0
    len_a = len(side_a)
    len_b = len(side_b)
    while i < len_a and j < len_b:
        item_a = side_a[i]
        item_b = side_b[j]
        if item_a[0].min_x <= item_b[0].min_x:
            ea = item_a[0]
            max_x = ea.max_x
            min_y = ea.min_y
            max_y = ea.max_y
            k = j
            while k < len_b:
                eb = side_b[k][0]
                if eb.min_x > max_x:
                    break
                if eb.min_y <= max_y and min_y <= eb.max_y:
                    item_b_k = side_b[k]
                    yield ea, item_a[1], item_a[2], eb, item_b_k[1], item_b_k[2]
                k += 1
            i += 1
        else:
            eb = item_b[0]
            max_x = eb.max_x
            min_y = eb.min_y
            max_y = eb.max_y
            k = i
            while k < len_a:
                ea = side_a[k][0]
                if ea.min_x > max_x:
                    break
                if ea.min_y <= max_y and min_y <= ea.max_y:
                    item_a_k = side_a[k]
                    yield ea, item_a_k[1], item_a_k[2], eb, item_b[1], item_b[2]
                k += 1
            j += 1


class Aggregate(PlanNode):
    """Hash aggregation with optional grouping."""

    def __init__(
        self,
        child: PlanNode,
        group_keys: List[Evaluator],
        agg_specs: List[Tuple[str, Optional[Evaluator], bool]],
        # (name, argument evaluator or None for COUNT(*), distinct)
        always_one_group: bool,
    ):
        self.child = child
        self.group_keys = group_keys
        self.agg_specs = agg_specs
        self.always_one_group = always_one_group

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        guard = ctx.guard
        groups: Dict[Any, Tuple[Row, list]] = {}
        for row in self.child.rows(ctx):
            key = tuple(_hashable(k(row, ctx)) for k in self.group_keys)
            if key not in groups:
                if guard is not None:
                    guard.reserve(1, row)
                accs = []
                for name, _arg, distinct in self.agg_specs:
                    factory = AGGREGATES[name]
                    accs.append(
                        factory(distinct) if name == "count" else factory()
                    )
                groups[key] = (row, accs)
            _first, accs = groups[key]
            for (name, arg, _d), acc in zip(self.agg_specs, accs):
                acc.add(1 if arg is None else arg(row, ctx))
        if not groups and self.always_one_group:
            accs = []
            for name, _arg, distinct in self.agg_specs:
                factory = AGGREGATES[name]
                accs.append(factory(distinct) if name == "count" else factory())
            groups[()] = ({}, accs)
        for _key, (first_row, accs) in groups.items():
            out = dict(first_row)
            out["__agg__"] = tuple(acc.result() for acc in accs)
            yield out

    def describe(self) -> str:
        kind = "grouped" if self.group_keys else "plain"
        return f"Aggregate ({kind}, {len(self.agg_specs)} aggs)"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


def _hashable(value: Any) -> Any:
    if isinstance(value, Geometry):
        return value.wkb()
    return value


class Project(PlanNode):
    def __init__(self, child: PlanNode, outputs: List[Tuple[str, Evaluator]]):
        self.child = child
        self.outputs = outputs

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        for row in self.child.rows(ctx):
            yield {
                "__out__": tuple(fn(row, ctx) for _name, fn in self.outputs)
            }

    @property
    def column_names(self) -> List[str]:
        return [name for name, _fn in self.outputs]

    def describe(self) -> str:
        return f"Project [{', '.join(self.column_names)}]"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


class Sort(PlanNode):
    def __init__(self, child: PlanNode,
                 keys: List[Tuple[Evaluator, bool]]):
        self.child = child
        self.keys = keys  # (evaluator, descending)

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        materialised = list(self.child.rows(ctx))
        guard = ctx.guard
        if guard is not None and materialised:
            guard.reserve(len(materialised), materialised[0])
        if WAITS.enabled:
            _started = time.perf_counter()
            try:
                self._sort(materialised, ctx)
            finally:
                WAITS.record(CPU_SORT, time.perf_counter() - _started)
        else:
            self._sort(materialised, ctx)
        yield from materialised

    def _sort(self, materialised: List[Row], ctx: ExecContext) -> None:
        # stable multi-key sort: apply keys right-to-left
        for evaluator, descending in reversed(self.keys):
            materialised.sort(
                key=lambda row: _sort_key(evaluator(row, ctx)),
                reverse=descending,
            )

    def describe(self) -> str:
        return f"Sort ({len(self.keys)} keys)"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


def _sort_key(value: Any) -> tuple:
    # None sorts first ascending (→ last descending); mixed types by name
    if value is None:
        return (0, "", 0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, "", value)
    return (2, str(value), 0)


class Distinct(PlanNode):
    def __init__(self, child: PlanNode):
        self.child = child

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        seen = set()
        for row in self.child.rows(ctx):
            key = tuple(_hashable(v) for v in row["__out__"])
            if key not in seen:
                seen.add(key)
                yield row

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


class Limit(PlanNode):
    def __init__(self, child: PlanNode, limit: Optional[Evaluator],
                 offset: Optional[Evaluator]):
        self.child = child
        self.limit = limit
        self.offset = offset

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        n = self.limit({}, ctx) if self.limit is not None else None
        skip = self.offset({}, ctx) if self.offset is not None else 0
        if n is not None and (not isinstance(n, int) or n < 0):
            raise SqlPlanError(f"LIMIT must be a non-negative integer, got {n!r}")
        if not isinstance(skip, int) or skip < 0:
            raise SqlPlanError(f"OFFSET must be a non-negative integer, got {skip!r}")
        emitted = 0
        for i, row in enumerate(self.child.rows(ctx)):
            if i < skip:
                continue
            if n is not None and emitted >= n:
                return
            emitted += 1
            yield row

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)
