"""SQL function registry: scalar helpers, geometry constructors/accessors,
spatial analysis functions, spatial predicates, and aggregates.

Spatial *predicates* are routed through the active engine profile so that
the three benchmarked engines can differ in semantics (exact refinement
vs. MBR-only) and mechanism (fast-path predicates vs. full DE-9IM
matrices) — the axes the paper's evaluation turns on. Everything else is
profile-gated only by the supported-function set.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.algorithms import (
    area,
    buffer as geom_buffer,
    centroid,
    convex_hull,
    difference,
    distance,
    dwithin,
    intersection,
    is_simple,
    is_valid,
    length,
    perimeter,
    point_on_surface,
    relate,
    simplify,
    sym_difference,
    union,
)
from repro.errors import SqlPlanError, UnsupportedFeatureError
from repro.geometry import (
    Envelope,
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    Point,
    wkb_dumps,
    wkb_loads,
    wkt_dumps,
    wkt_loads,
)

SPATIAL_PREDICATES = frozenset(
    {
        "st_equals",
        "st_disjoint",
        "st_intersects",
        "st_touches",
        "st_crosses",
        "st_within",
        "st_contains",
        "st_overlaps",
        "st_covers",
        "st_coveredby",
    }
)


def _need_geometry(value: Any, func: str) -> Geometry:
    if not isinstance(value, Geometry):
        raise SqlPlanError(f"{func} expects a geometry argument, got {value!r}")
    return value


def _need_number(value: Any, func: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SqlPlanError(f"{func} expects a numeric argument, got {value!r}")
    return float(value)


class FunctionRegistry:
    """Name → implementation mapping for scalar SQL functions."""

    def __init__(self) -> None:
        self._functions: Dict[str, Callable[..., Any]] = {}
        self._register_general()
        self._register_geometry()

    def lookup(self, name: str) -> Callable[..., Any]:
        try:
            return self._functions[name]
        except KeyError:
            raise SqlPlanError(f"unknown function {name!r}")

    def has(self, name: str) -> bool:
        return name in self._functions

    def register(self, name: str, impl: Callable[..., Any]) -> None:
        self._functions[name.lower()] = impl

    # -- general scalars ------------------------------------------------------

    def _register_general(self) -> None:
        def null_safe(fn: Callable[..., Any]) -> Callable[..., Any]:
            def wrapper(*args: Any) -> Any:
                if any(a is None for a in args):
                    return None
                return fn(*args)

            return wrapper

        self.register("abs", null_safe(lambda x: abs(x)))
        self.register("round", null_safe(
            lambda x, nd=0: round(float(x), int(nd))
        ))
        self.register("floor", null_safe(lambda x: math.floor(x)))
        self.register("ceil", null_safe(lambda x: math.ceil(x)))
        self.register("sqrt", null_safe(lambda x: math.sqrt(x)))
        self.register("power", null_safe(lambda x, y: float(x) ** float(y)))
        self.register("mod", null_safe(lambda x, y: x % y))
        self.register("lower", null_safe(lambda s: str(s).lower()))
        self.register("upper", null_safe(lambda s: str(s).upper()))
        self.register("trim", null_safe(lambda s: str(s).strip()))
        self.register("char_length", null_safe(lambda s: len(str(s))))
        self.register(
            "substr",
            null_safe(
                lambda s, start, count=None: (
                    str(s)[int(start) - 1 : int(start) - 1 + int(count)]
                    if count is not None
                    else str(s)[int(start) - 1 :]
                )
            ),
        )
        self.register(
            "coalesce",
            lambda *args: next((a for a in args if a is not None), None),
        )
        self.register("nullif", lambda a, b: None if a == b else a)
        self.register("least", null_safe(lambda *args: min(args)))
        self.register("greatest", null_safe(lambda *args: max(args)))

    # -- geometry functions ------------------------------------------------------

    def _register_geometry(self) -> None:
        reg = self.register

        reg("st_geomfromtext", lambda wkt, *_srid: wkt_loads(str(wkt)))
        reg("st_geographyfromtext", lambda wkt: wkt_loads(str(wkt)))
        reg("st_geomfromwkb", lambda blob, *_srid: wkb_loads(bytes(blob)))
        reg(
            "st_point",
            lambda x, y: Point(
                _need_number(x, "ST_Point"), _need_number(y, "ST_Point")
            ),
        )
        reg("st_makepoint", self._functions["st_point"])
        reg(
            "st_makeenvelope",
            lambda x1, y1, x2, y2, *_srid: _envelope_polygon(
                float(x1), float(y1), float(x2), float(y2)
            ),
        )

        reg("st_astext", lambda g: wkt_dumps(_need_geometry(g, "ST_AsText")))
        reg("st_asbinary", lambda g: wkb_dumps(_need_geometry(g, "ST_AsBinary")))
        reg("st_x", lambda g: _point_coord(g, 0))
        reg("st_y", lambda g: _point_coord(g, 1))
        reg("st_srid", lambda g: 0)
        reg(
            "st_npoints",
            lambda g: _need_geometry(g, "ST_NPoints").num_points,
        )
        reg("st_numpoints", self._functions["st_npoints"])
        reg(
            "st_dimension",
            lambda g: _need_geometry(g, "ST_Dimension").dimension,
        )
        reg(
            "st_geometrytype",
            lambda g: "ST_"
            + _need_geometry(g, "ST_GeometryType").geom_type.wkt_name.title(),
        )
        reg("st_isvalid", lambda g: is_valid(_need_geometry(g, "ST_IsValid")))
        reg("st_issimple", lambda g: is_simple(_need_geometry(g, "ST_IsSimple")))
        reg("st_isempty", lambda g: _need_geometry(g, "ST_IsEmpty").is_empty)
        reg(
            "st_isclosed",
            lambda g: bool(getattr(_need_geometry(g, "ST_IsClosed"), "is_closed", False)),
        )

        reg("st_area", lambda g: area(_need_geometry(g, "ST_Area")))
        reg("st_length", lambda g: length(_need_geometry(g, "ST_Length")))
        reg("st_perimeter", lambda g: perimeter(_need_geometry(g, "ST_Perimeter")))
        reg(
            "st_distance",
            lambda a, b: distance(
                _need_geometry(a, "ST_Distance"), _need_geometry(b, "ST_Distance")
            ),
        )
        reg("st_centroid", lambda g: centroid(_need_geometry(g, "ST_Centroid")))
        reg(
            "st_pointonsurface",
            lambda g: point_on_surface(_need_geometry(g, "ST_PointOnSurface")),
        )
        reg(
            "st_envelope",
            lambda g: _need_geometry(g, "ST_Envelope").envelope_geometry(),
        )
        reg("st_boundary", _boundary)
        reg(
            "st_buffer",
            lambda g, r, qs=8: geom_buffer(
                _need_geometry(g, "ST_Buffer"),
                _need_number(r, "ST_Buffer"),
                quad_segs=int(qs),
            ),
        )
        reg(
            "st_convexhull",
            lambda g: convex_hull(_need_geometry(g, "ST_ConvexHull")),
        )
        reg(
            "st_simplify",
            lambda g, tol: simplify(
                _need_geometry(g, "ST_Simplify"), _need_number(tol, "ST_Simplify")
            ),
        )
        reg(
            "st_intersection",
            lambda a, b: intersection(
                _need_geometry(a, "ST_Intersection"),
                _need_geometry(b, "ST_Intersection"),
            ),
        )
        reg(
            "st_union",
            lambda a, b: union(
                _need_geometry(a, "ST_Union"), _need_geometry(b, "ST_Union")
            ),
        )
        reg(
            "st_difference",
            lambda a, b: difference(
                _need_geometry(a, "ST_Difference"),
                _need_geometry(b, "ST_Difference"),
            ),
        )
        reg(
            "st_symdifference",
            lambda a, b: sym_difference(
                _need_geometry(a, "ST_SymDifference"),
                _need_geometry(b, "ST_SymDifference"),
            ),
        )

        reg("st_numgeometries", _num_geometries)
        reg("st_geometryn", _geometry_n)
        reg(
            "st_snaptogrid",
            lambda g, size: _snap_to_grid(
                _need_geometry(g, "ST_SnapToGrid"),
                _need_number(size, "ST_SnapToGrid"),
            ),
        )
        reg("st_azimuth", _azimuth)
        reg("st_reverse", _reverse)

        reg("st_startpoint", lambda g: _line_endpoint(g, start=True))
        reg("st_endpoint", lambda g: _line_endpoint(g, start=False))
        reg(
            "st_linesubstring",
            lambda g, lo, hi: _line_substring(
                _as_line(g, "ST_LineSubstring"),
                _need_number(lo, "ST_LineSubstring"),
                _need_number(hi, "ST_LineSubstring"),
            ),
        )
        reg(
            "st_lineinterpolatepoint",
            lambda g, frac: _as_line(g, "ST_LineInterpolatePoint").interpolate(
                _need_number(frac, "ST_LineInterpolatePoint")
            ),
        )
        reg(
            "st_linelocatepoint",
            lambda g, p: _as_line(g, "ST_LineLocatePoint").project(
                _as_point(p, "ST_LineLocatePoint")
            ),
        )
        reg(
            "st_dwithin",
            lambda a, b, r: dwithin(
                _need_geometry(a, "ST_DWithin"),
                _need_geometry(b, "ST_DWithin"),
                _need_number(r, "ST_DWithin"),
            ),
        )
        reg(
            "st_relate",
            lambda a, b, pattern=None: (
                str(relate(_need_geometry(a, "ST_Relate"), _need_geometry(b, "ST_Relate")))
                if pattern is None
                else relate(
                    _need_geometry(a, "ST_Relate"), _need_geometry(b, "ST_Relate")
                ).matches(str(pattern))
            ),
        )
        reg(
            "st_expand",
            lambda g, margin: _envelope_polygon(
                *(_need_geometry(g, "ST_Expand").envelope.expanded(
                    _need_number(margin, "ST_Expand")
                ).as_tuple())
            ),
        )

        from repro.algorithms.distance import closest_point, shortest_line

        reg(
            "st_closestpoint",
            lambda a, b: closest_point(
                _need_geometry(a, "ST_ClosestPoint"),
                _need_geometry(b, "ST_ClosestPoint"),
            ),
        )
        reg(
            "st_shortestline",
            lambda a, b: shortest_line(
                _need_geometry(a, "ST_ShortestLine"),
                _need_geometry(b, "ST_ShortestLine"),
            ),
        )

        # geodetic functions (lon/lat on the sphere) — the "true geodetic
        # support" axis the paper compares engines on
        from repro.algorithms import geodesy

        reg(
            "st_distancesphere",
            lambda a, b: geodesy.sphere_distance_m(
                _need_geometry(a, "ST_DistanceSphere"),
                _need_geometry(b, "ST_DistanceSphere"),
            ),
        )
        reg(
            "st_lengthsphere",
            lambda g: geodesy.sphere_length_m(
                _need_geometry(g, "ST_LengthSphere")
            ),
        )
        reg(
            "st_areasphere",
            lambda g: geodesy.sphere_area_m2(
                _need_geometry(g, "ST_AreaSphere")
            ),
        )


def _envelope_polygon(x1: float, y1: float, x2: float, y2: float) -> Geometry:
    from repro.geometry.polygon import Polygon

    lo_x, hi_x = sorted((x1, x2))
    lo_y, hi_y = sorted((y1, y2))
    return Polygon(
        [(lo_x, lo_y), (hi_x, lo_y), (hi_x, hi_y), (lo_x, hi_y)]
    )


def _point_coord(value: Any, axis: int) -> float:
    geom = _need_geometry(value, "ST_X/ST_Y")
    if not isinstance(geom, Point):
        raise SqlPlanError("ST_X/ST_Y require a POINT")
    return geom.x if axis == 0 else geom.y


def _boundary(value: Any) -> Geometry:
    geom = _need_geometry(value, "ST_Boundary")
    if hasattr(geom, "boundary"):
        return geom.boundary()  # polygons
    if isinstance(geom, LineString):
        pts = geom.boundary_points()
        if not pts:
            from repro.geometry.collection import EMPTY

            return EMPTY
        if len(pts) == 1:
            return pts[0]
        return MultiPoint(list(pts))
    if isinstance(geom, MultiLineString):
        pts = geom.boundary_points()
        if not pts:
            from repro.geometry.collection import EMPTY

            return EMPTY
        return MultiPoint(list(pts))
    from repro.geometry.collection import EMPTY

    return EMPTY  # points have an empty boundary


def _line_endpoint(value: Any, start: bool) -> Geometry:
    line = _as_line(value, "ST_StartPoint/ST_EndPoint")
    return line.start if start else line.end


def _as_line(value: Any, func: str) -> LineString:
    geom = _need_geometry(value, func)
    if isinstance(geom, LineString):
        return geom
    if isinstance(geom, MultiLineString) and len(geom) == 1:
        return geom[0]
    raise SqlPlanError(f"{func} requires a LINESTRING")


def _as_point(value: Any, func: str) -> Point:
    geom = _need_geometry(value, func)
    if not isinstance(geom, Point):
        raise SqlPlanError(f"{func} requires a POINT")
    return geom


def _members(geom: Geometry):
    from repro.geometry import (
        GeometryCollection,
        MultiLineString,
        MultiPoint,
        MultiPolygon,
    )

    if isinstance(geom, MultiPoint):
        return list(geom.points)
    if isinstance(geom, MultiLineString):
        return list(geom.lines)
    if isinstance(geom, MultiPolygon):
        return list(geom.polygons)
    if isinstance(geom, GeometryCollection):
        return list(geom.geoms)
    return [geom]


def _num_geometries(value: Any) -> int:
    return len(_members(_need_geometry(value, "ST_NumGeometries")))


def _geometry_n(value: Any, n: Any):
    members = _members(_need_geometry(value, "ST_GeometryN"))
    index = int(n)
    if not 1 <= index <= len(members):  # 1-based, like the standard
        return None
    return members[index - 1]


def _snap_to_grid(geom: Geometry, size: float) -> Geometry:
    if size <= 0.0:
        raise SqlPlanError("ST_SnapToGrid requires a positive cell size")

    def snap(coords):
        return [
            (round(x / size) * size, round(y / size) * size) for x, y in coords
        ]

    from repro.geometry import (
        GeometryCollection,
        MultiLineString,
        MultiPoint,
        MultiPolygon,
        Polygon,
    )

    if isinstance(geom, Point):
        (c,) = snap([geom.coord])
        return Point(*c)
    if isinstance(geom, MultiPoint):
        return MultiPoint(snap(p.coord for p in geom.points))
    if isinstance(geom, LineString):
        return LineString(_dedupe(snap(geom.coords)))
    if isinstance(geom, MultiLineString):
        return MultiLineString(
            [LineString(_dedupe(snap(line.coords))) for line in geom.lines]
        )
    if isinstance(geom, Polygon):
        return Polygon(
            _dedupe(snap(geom.shell)),
            [_dedupe(snap(h)) for h in geom.holes],
        )
    if isinstance(geom, MultiPolygon):
        return MultiPolygon([_snap_to_grid(p, size) for p in geom.polygons])
    if isinstance(geom, GeometryCollection):
        return GeometryCollection(
            [_snap_to_grid(m, size) for m in geom.geoms]
        )
    raise SqlPlanError(f"cannot snap {type(geom).__name__}")


def _dedupe(coords):
    out = []
    for c in coords:
        if not out or c != out[-1]:
            out.append(c)
    return out


def _azimuth(a: Any, b: Any) -> Any:
    """North-based clockwise bearing from point a to point b, in radians."""
    import math

    pa = _as_point(a, "ST_Azimuth")
    pb = _as_point(b, "ST_Azimuth")
    if pa.coord == pb.coord:
        return None
    return math.atan2(pb.x - pa.x, pb.y - pa.y) % (2.0 * math.pi)


def _reverse(value: Any) -> Geometry:
    geom = _need_geometry(value, "ST_Reverse")
    if isinstance(geom, LineString):
        return geom.reversed()
    if isinstance(geom, MultiLineString):
        return MultiLineString([line.reversed() for line in geom.lines])
    return geom


def _line_substring(line: LineString, lo: float, hi: float) -> Geometry:
    """The portion of ``line`` between fractions lo and hi of its length."""
    if not 0.0 <= lo <= hi <= 1.0:
        raise SqlPlanError("ST_LineSubstring requires 0 <= lo <= hi <= 1")
    if lo == hi:
        return line.interpolate(lo)
    import math

    total = line.length()
    start_d, end_d = lo * total, hi * total
    coords = []
    walked = 0.0
    for (ax, ay), (bx, by) in line.segments():
        seg = math.hypot(bx - ax, by - ay)
        seg_start, seg_end = walked, walked + seg
        if seg_end < start_d or seg_start > end_d:
            walked = seg_end
            continue
        t0 = max(0.0, (start_d - seg_start) / seg) if seg else 0.0
        t1 = min(1.0, (end_d - seg_start) / seg) if seg else 1.0
        p0 = (ax + t0 * (bx - ax), ay + t0 * (by - ay))
        p1 = (ax + t1 * (bx - ax), ay + t1 * (by - ay))
        if not coords:
            coords.append(p0)
        elif coords[-1] != p0:
            coords.append(p0)
        if coords[-1] != p1:
            coords.append(p1)
        walked = seg_end
    if len(coords) < 2:
        return line.interpolate(lo)
    return LineString(coords)


# -- aggregates -----------------------------------------------------------------


class Aggregate:
    """Base class for aggregate accumulators."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountAgg(Aggregate):
    def __init__(self, distinct: bool = False):
        self.count = 0
        self.distinct = distinct
        self.seen: Optional[set] = set() if distinct else None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.seen is not None:
            key = value.wkt() if isinstance(value, Geometry) else value
            if key in self.seen:
                return
            self.seen.add(key)
        self.count += 1

    def result(self) -> int:
        return self.count


class SumAgg(Aggregate):
    def __init__(self) -> None:
        self.total: Optional[float] = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self) -> Any:
        return self.total


class AvgAgg(Aggregate):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def result(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class MinAgg(Aggregate):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class MaxAgg(Aggregate):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class UnionAgg(Aggregate):
    """``ST_Union(geom)`` as an aggregate: cascaded union of the group."""

    def __init__(self) -> None:
        self.geoms: List[Geometry] = []

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.geoms.append(_need_geometry(value, "ST_Union"))

    def result(self) -> Optional[Geometry]:
        if not self.geoms:
            return None
        from repro.algorithms import union_all

        return union_all(self.geoms)


class CollectAgg(Aggregate):
    """``ST_Collect(geom)``: pack the group into a collection."""

    def __init__(self) -> None:
        self.geoms: List[Geometry] = []

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.geoms.append(_need_geometry(value, "ST_Collect"))

    def result(self) -> Optional[Geometry]:
        if not self.geoms:
            return None
        from repro.geometry.collection import GeometryCollection

        return GeometryCollection(self.geoms)


class ExtentAgg(Aggregate):
    """``ST_Extent(geom)``: envelope of the whole group as a polygon."""

    def __init__(self) -> None:
        self.env: Optional[Envelope] = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        env = _need_geometry(value, "ST_Extent").envelope
        self.env = env if self.env is None else self.env.union(env)

    def result(self) -> Optional[Geometry]:
        if self.env is None:
            return None
        return _envelope_polygon(*self.env.as_tuple())


AGGREGATES: Dict[str, Callable[[], Aggregate]] = {
    "count": CountAgg,
    "sum": SumAgg,
    "avg": AvgAgg,
    "min": MinAgg,
    "max": MaxAgg,
    "st_union": UnionAgg,
    "st_collect": CollectAgg,
    "st_extent": ExtentAgg,
}

#: names that are aggregates only when called with a single argument —
#: ``ST_Union(a, b)`` stays a scalar function.
DUAL_ROLE_AGGREGATES = frozenset({"st_union", "st_collect"})
