"""Recursive-descent parser for the spatial SQL dialect.

Grammar (simplified)::

    statement   := select | insert | delete | create_table
                 | create_index | drop_table | drop_index | analyze
    select      := SELECT [DISTINCT] items [FROM table_ref join*]
                   [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                   [ORDER BY order_list] [LIMIT expr [OFFSET expr]]
    join        := [INNER|CROSS] JOIN table_ref [ON expr]
    expr        := or_expr, with precedence
                   OR < AND < NOT < comparison < additive < multiplicative
                   < unary minus < primary
    comparison  := = <> != < <= > >= LIKE BETWEEN IN IS [NOT] NULL &&

``&&`` is the envelope-overlap operator (PostGIS-style); spatial work is
otherwise expressed through ``ST_*`` function calls resolved at plan time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">=", "&&"}

_CLAUSE_KEYWORDS = {
    "from", "where", "group", "having", "order", "limit", "offset",
    "join", "inner", "cross", "left", "on", "and", "or", "not",
    "as", "asc", "desc", "union", "values",
}


class Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self.param_count = 0

    # -- token helpers -----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.END:
            self.pos += 1
        return token

    def accept_ident(self, *names: str) -> bool:
        if self.peek().is_ident(*names):
            self.advance()
            return True
        return False

    def expect_ident(self, *names: str) -> Token:
        token = self.peek()
        if not token.is_ident(*names):
            raise SqlSyntaxError(
                f"expected {' or '.join(n.upper() for n in names)} "
                f"near offset {token.pos} in {self.sql!r}"
            )
        return self.advance()

    def accept_punct(self, value: str) -> bool:
        token = self.peek()
        if token.type is TokenType.PUNCT and token.value == value:
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> None:
        if not self.accept_punct(value):
            token = self.peek()
            raise SqlSyntaxError(
                f"expected {value!r} near offset {token.pos} in {self.sql!r}"
            )

    def accept_operator(self, *values: str) -> Optional[str]:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in values:
            self.advance()
            return token.value
        return None

    def identifier(self, what: str) -> str:
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise SqlSyntaxError(
                f"expected {what} near offset {token.pos} in {self.sql!r}"
            )
        return self.advance().value

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.is_ident("select"):
            stmt: ast.Statement = self.parse_select()
        elif token.is_ident("insert"):
            stmt = self.parse_insert()
        elif token.is_ident("delete"):
            stmt = self.parse_delete()
        elif token.is_ident("update"):
            stmt = self.parse_update()
        elif token.is_ident("create"):
            stmt = self.parse_create()
        elif token.is_ident("drop"):
            stmt = self.parse_drop()
        elif token.is_ident("analyze"):
            stmt = self.parse_analyze()
        elif token.is_ident("begin", "start", "commit", "end", "rollback"):
            stmt = self.parse_txn_control()
        else:
            raise SqlSyntaxError(
                f"unsupported statement starting with {token.value!r}"
            )
        self.accept_punct(";")
        tail = self.peek()
        if tail.type is not TokenType.END:
            raise SqlSyntaxError(
                f"trailing input near offset {tail.pos} in {self.sql!r}"
            )
        return stmt

    def parse_create(self) -> ast.Statement:
        self.expect_ident("create")
        if self.accept_ident("table"):
            if_not_exists = False
            if self.accept_ident("if"):
                self.expect_ident("not")
                self.expect_ident("exists")
                if_not_exists = True
            name = self.identifier("table name")
            self.expect_punct("(")
            columns: List[ast.ColumnDef] = []
            while True:
                col_name = self.identifier("column name")
                type_name = self.identifier("column type")
                # swallow VARCHAR(30)-style size suffixes
                if self.accept_punct("("):
                    while not self.accept_punct(")"):
                        self.advance()
                columns.append(ast.ColumnDef(col_name, type_name))
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
            return ast.CreateTable(name, columns, if_not_exists)
        if self.accept_ident("spatial"):
            self.expect_ident("index")
            name = self.identifier("index name")
            self.expect_ident("on")
            table = self.identifier("table name")
            self.expect_punct("(")
            column = self.identifier("column name")
            self.expect_punct(")")
            using = None
            if self.accept_ident("using"):
                using = self.identifier("index kind")
            return ast.CreateSpatialIndex(name, table, column, using)
        raise SqlSyntaxError("expected TABLE or SPATIAL INDEX after CREATE")

    def parse_analyze(self) -> ast.Statement:
        self.expect_ident("analyze")
        table = None
        if self.peek().type is TokenType.IDENT:
            table = self.identifier("table name")
        return ast.Analyze(table)

    def parse_txn_control(self) -> ast.Statement:
        """BEGIN/START TRANSACTION, COMMIT/END and ROLLBACK, with the
        optional WORK/TRANSACTION noise words SQL allows."""
        keyword = self.expect_ident(
            "begin", "start", "commit", "end", "rollback"
        ).value.lower()
        if keyword == "start":
            self.expect_ident("transaction")
            return ast.Begin()
        self.accept_ident("work", "transaction")
        if keyword == "begin":
            return ast.Begin()
        if keyword == "rollback":
            return ast.Rollback()
        return ast.Commit()

    def parse_drop(self) -> ast.Statement:
        self.expect_ident("drop")
        kind = self.expect_ident("table", "index").value
        if_exists = False
        if self.accept_ident("if"):
            self.expect_ident("exists")
            if_exists = True
        name = self.identifier(f"{kind} name")
        if kind == "table":
            return ast.DropTable(name, if_exists)
        return ast.DropIndex(name, if_exists)

    def parse_insert(self) -> ast.Insert:
        self.expect_ident("insert")
        self.expect_ident("into")
        table = self.identifier("table name")
        columns: Optional[List[str]] = None
        if self.accept_punct("("):
            columns = [self.identifier("column name")]
            while self.accept_punct(","):
                columns.append(self.identifier("column name"))
            self.expect_punct(")")
        self.expect_ident("values")
        rows: List[List[ast.Expr]] = []
        while True:
            self.expect_punct("(")
            row = [self.parse_expr()]
            while self.accept_punct(","):
                row.append(self.parse_expr())
            self.expect_punct(")")
            rows.append(row)
            if not self.accept_punct(","):
                break
        return ast.Insert(table, columns, rows)

    def parse_delete(self) -> ast.Delete:
        self.expect_ident("delete")
        self.expect_ident("from")
        table = self.identifier("table name")
        where = self.parse_expr() if self.accept_ident("where") else None
        return ast.Delete(table, where)

    def parse_update(self) -> ast.Update:
        self.expect_ident("update")
        table = self.identifier("table name")
        self.expect_ident("set")
        assignments = [self._parse_assignment()]
        while self.accept_punct(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self.accept_ident("where") else None
        return ast.Update(table, assignments, where)

    def _parse_assignment(self):
        column = self.identifier("column name")
        token = self.peek()
        if not (token.type is TokenType.OPERATOR and token.value == "="):
            raise SqlSyntaxError(
                f"expected '=' in SET near offset {token.pos} in {self.sql!r}"
            )
        self.advance()
        return (column, self.parse_expr())

    def parse_select(self) -> ast.Select:
        self.expect_ident("select")
        distinct = bool(self.accept_ident("distinct"))
        self.accept_ident("all")
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        select = ast.Select(items=items, distinct=distinct)
        if self.accept_ident("from"):
            select.source = self.parse_table_ref()
            while True:
                if self.accept_ident("join") or (
                    self.accept_ident("inner") and self.expect_ident("join")
                ):
                    table = self.parse_table_ref()
                    self.expect_ident("on")
                    condition: Optional[ast.Expr] = self.parse_expr()
                elif self.accept_ident("cross"):
                    self.expect_ident("join")
                    table = self.parse_table_ref()
                    condition = None
                elif self.accept_punct(","):
                    table = self.parse_table_ref()
                    condition = None
                else:
                    break
                select.joins.append(ast.Join(table, condition))
        if self.accept_ident("where"):
            select.where = self.parse_expr()
        if self.accept_ident("group"):
            self.expect_ident("by")
            select.group_by.append(self.parse_expr())
            while self.accept_punct(","):
                select.group_by.append(self.parse_expr())
        if self.accept_ident("having"):
            select.having = self.parse_expr()
        if self.accept_ident("order"):
            self.expect_ident("by")
            select.order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                select.order_by.append(self.parse_order_item())
        if self.accept_ident("limit"):
            select.limit = self.parse_expr()
        if self.accept_ident("offset"):
            select.offset = self.parse_expr()
        return select

    def parse_select_item(self) -> ast.SelectItem:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self.advance()
            return ast.SelectItem(ast.Star())
        # alias.* needs two-token lookahead
        if (
            token.type is TokenType.IDENT
            and self.tokens[self.pos + 1].type is TokenType.PUNCT
            and self.tokens[self.pos + 1].value == "."
            and self.tokens[self.pos + 2].type is TokenType.OPERATOR
            and self.tokens[self.pos + 2].value == "*"
        ):
            self.advance()
            self.advance()
            self.advance()
            return ast.SelectItem(ast.Star(table=token.value))
        expr = self.parse_expr()
        alias = None
        if self.accept_ident("as"):
            alias = self.identifier("alias")
        elif (
            self.peek().type is TokenType.IDENT
            and self.peek().value not in _CLAUSE_KEYWORDS
        ):
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def parse_table_ref(self) -> ast.TableRef:
        name = self.identifier("table name")
        alias = name
        if self.accept_ident("as"):
            alias = self.identifier("alias")
        elif (
            self.peek().type is TokenType.IDENT
            and self.peek().value not in _CLAUSE_KEYWORDS
        ):
            alias = self.advance().value
        return ast.TableRef(name, alias)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_ident("desc"):
            descending = True
        else:
            self.accept_ident("asc")
        return ast.OrderItem(expr, descending)

    # -- expressions -------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept_ident("or"):
            left = ast.BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept_ident("and"):
            left = ast.BinaryOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept_ident("not"):
            return ast.UnaryOp("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        op = self.accept_operator(*_COMPARISONS)
        if op is not None:
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self.parse_additive())
        if self.accept_ident("like"):
            return ast.BinaryOp("like", left, self.parse_additive())
        negated = False
        if self.peek().is_ident("not"):
            nxt = self.tokens[self.pos + 1]
            if nxt.is_ident("like", "between", "in"):
                self.advance()
                negated = True
        if self.accept_ident("like"):
            inner = ast.BinaryOp("like", left, self.parse_additive())
            return ast.UnaryOp("not", inner)
        if self.accept_ident("between"):
            low = self.parse_additive()
            self.expect_ident("and")
            high = self.parse_additive()
            return ast.Between(left, low, high, negated)
        if self.accept_ident("in"):
            self.expect_punct("(")
            options = [self.parse_expr()]
            while self.accept_punct(","):
                options.append(self.parse_expr())
            self.expect_punct(")")
            return ast.InList(left, tuple(options), negated)
        if self.accept_ident("is"):
            neg = bool(self.accept_ident("not"))
            self.expect_ident("null")
            return ast.IsNull(left, neg)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            op = self.accept_operator("+", "-", "||", "<->")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self.parse_multiplicative())

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while True:
            op = self.accept_operator("*", "/", "%")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self.parse_unary())

    def parse_unary(self) -> ast.Expr:
        if self.accept_operator("-"):
            return ast.UnaryOp("-", self.parse_unary())
        if self.accept_operator("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PARAM:
            self.advance()
            param = ast.Param(self.param_count)
            self.param_count += 1
            return param
        if token.type is TokenType.PUNCT and token.value == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            if token.value == "null":
                self.advance()
                return ast.Literal(None)
            if token.value == "true":
                self.advance()
                return ast.Literal(True)
            if token.value == "false":
                self.advance()
                return ast.Literal(False)
            name = self.advance().value
            if self.accept_punct("("):
                distinct = bool(self.accept_ident("distinct"))
                args: List[ast.Expr] = []
                star = self.peek()
                if star.type is TokenType.OPERATOR and star.value == "*":
                    self.advance()
                    args.append(ast.Star())
                elif not (
                    self.peek().type is TokenType.PUNCT
                    and self.peek().value == ")"
                ):
                    args.append(self.parse_expr())
                    while self.accept_punct(","):
                        args.append(self.parse_expr())
                self.expect_punct(")")
                return ast.FuncCall(name, tuple(args), distinct)
            if self.accept_punct("."):
                column = self.identifier("column name")
                return ast.ColumnRef(column, table=name)
            return ast.ColumnRef(name)
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} at offset {token.pos} "
            f"in {self.sql!r}"
        )


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement."""
    return Parser(sql).parse_statement()
