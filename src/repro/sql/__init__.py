"""SQL front-end: lexer, parser, planner, executor, function registry."""

from repro.sql.functions import FunctionRegistry, SPATIAL_PREDICATES
from repro.sql.parser import parse
from repro.sql.planner import Planner

__all__ = ["FunctionRegistry", "Planner", "SPATIAL_PREDICATES", "parse"]
