"""R-tree with quadratic-split insertion and STR bulk loading.

This is the index behind the ``greenwood`` and ``bluestem`` engine
profiles (PostGIS and MySQL both use R-tree variants). Bulk loading uses
Sort-Tile-Recursive packing — the strategy a real loader applies during
``CREATE SPATIAL INDEX`` on a populated table, and the reason the loading
micro benchmark (J-T3) separates "load rows" from "build index" timings.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, List, Optional, Tuple

from repro.geometry.base import Envelope
from repro.index.base import SpatialIndex


class _Node:
    __slots__ = ("leaf", "envelope", "entries")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.envelope: Optional[Envelope] = None
        # leaf: (item_id, env); inner: (child, env) kept as (entry, env)
        self.entries: List[Tuple[object, Envelope]] = []

    def recompute(self) -> None:
        if self.entries:
            self.envelope = Envelope.union_all(env for _e, env in self.entries)
        else:
            self.envelope = None


def _enlargement(env: Optional[Envelope], extra: Envelope) -> float:
    if env is None:
        return extra.area
    merged = env.union(extra)
    return merged.area - env.area


class RTree(SpatialIndex):
    """Guttman R-tree (quadratic split), max fanout ``max_entries``."""

    kind = "rtree"

    def __init__(self, max_entries: int = 16):
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 3)
        self.root = _Node(leaf=True)
        self._size = 0

    # -- insertion -----------------------------------------------------------

    def insert(self, item_id: int, envelope: Envelope) -> None:
        leaf, path = self._choose_leaf(envelope)
        leaf.entries.append((item_id, envelope))
        self._size += 1
        self._adjust(leaf, path)

    def _choose_leaf(self, env: Envelope) -> Tuple[_Node, List[_Node]]:
        node = self.root
        path: List[_Node] = []
        while not node.leaf:
            path.append(node)
            best = min(
                node.entries,
                key=lambda entry: (
                    _enlargement(entry[1], env),
                    entry[1].area,
                ),
            )
            node = best[0]  # type: ignore[assignment]
        return node, path

    def _adjust(self, node: _Node, path: List[_Node]) -> None:
        node.recompute()
        split: Optional[_Node] = None
        if len(node.entries) > self.max_entries:
            split = self._split(node)
        for parent in reversed(path):
            parent.entries = [
                (child, child.envelope)  # refresh child envelope
                if child is node or child is split
                else (child, env)
                for child, env in parent.entries
            ]
            if split is not None:
                parent.entries.append((split, split.envelope))
                split = None
            parent.recompute()
            node = parent
            if len(node.entries) > self.max_entries:
                split = self._split(node)
        if split is not None:  # the root itself split: grow the tree
            new_root = _Node(leaf=False)
            new_root.entries = [
                (self.root, self.root.envelope),
                (split, split.envelope),
            ]
            new_root.recompute()
            self.root = new_root

    def _split(self, node: _Node) -> _Node:
        """Quadratic split: seeds are the most wasteful pair."""
        entries = node.entries
        worst = -math.inf
        seed_a, seed_b = 0, 1
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                merged = entries[i][1].union(entries[j][1])
                waste = merged.area - entries[i][1].area - entries[j][1].area
                if waste > worst:
                    worst = waste
                    seed_a, seed_b = i, j
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        env_a = entries[seed_a][1]
        env_b = entries[seed_b][1]
        rest = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]
        while rest:
            # force-assign when one group must absorb all the rest
            if len(group_a) + len(rest) <= self.min_entries:
                group_a.extend(rest)
                env_a = Envelope.union_all([env_a] + [e[1] for e in rest])
                break
            if len(group_b) + len(rest) <= self.min_entries:
                group_b.extend(rest)
                env_b = Envelope.union_all([env_b] + [e[1] for e in rest])
                break
            # pick the entry with the strongest preference
            best_idx = max(
                range(len(rest)),
                key=lambda k: abs(
                    _enlargement(env_a, rest[k][1])
                    - _enlargement(env_b, rest[k][1])
                ),
            )
            entry = rest.pop(best_idx)
            grow_a = _enlargement(env_a, entry[1])
            grow_b = _enlargement(env_b, entry[1])
            if (grow_a, env_a.area, len(group_a)) <= (
                grow_b,
                env_b.area,
                len(group_b),
            ):
                group_a.append(entry)
                env_a = env_a.union(entry[1])
            else:
                group_b.append(entry)
                env_b = env_b.union(entry[1])
        node.entries = group_a
        node.recompute()
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        sibling.recompute()
        return sibling

    # -- removal --------------------------------------------------------------

    def remove(self, item_id: int, envelope: Envelope) -> bool:
        found = self._remove_rec(self.root, item_id, envelope)
        if found:
            self._size -= 1
            # collapse a root that degenerated to a single inner child
            while not self.root.leaf and len(self.root.entries) == 1:
                self.root = self.root.entries[0][0]  # type: ignore[assignment]
        return found

    def _remove_rec(self, node: _Node, item_id: int, env: Envelope) -> bool:
        if node.leaf:
            for i, (stored_id, stored_env) in enumerate(node.entries):
                if stored_id == item_id and stored_env == env:
                    node.entries.pop(i)
                    node.recompute()
                    return True
            return False
        for i, (child, child_env) in enumerate(node.entries):
            if child_env.intersects(env) and self._remove_rec(child, item_id, env):  # type: ignore[arg-type]
                if not child.entries:  # type: ignore[union-attr]
                    node.entries.pop(i)
                else:
                    node.entries[i] = (child, child.envelope)  # type: ignore[union-attr]
                node.recompute()
                return True
        return False

    # -- queries ---------------------------------------------------------------

    def search(self, envelope: Envelope) -> List[int]:
        hits: List[int] = []
        if self.root.envelope is None:
            return hits
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.envelope is None or not node.envelope.intersects(envelope):
                continue
            if node.leaf:
                hits.extend(
                    item_id  # type: ignore[misc]
                    for item_id, env in node.entries
                    if env.intersects(envelope)
                )
            else:
                stack.extend(
                    child  # type: ignore[misc]
                    for child, env in node.entries
                    if env.intersects(envelope)
                )
        return hits

    def items(self):
        """Every ``(item_id, envelope)`` leaf entry."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.leaf:
                yield from node.entries
            else:
                stack.extend(child for child, _env in node.entries)

    def join(self, other):
        """Synchronized traversal join: descend both trees at once.

        Maintains a stack of node pairs whose envelopes intersect; a
        leaf x leaf pair emits its intersecting entry pairs, an inner
        node is expanded only against the entries of its partner that
        its partner's envelope admits. This visits each candidate pair
        once instead of re-descending the inner tree per outer row.
        """
        if not isinstance(other, RTree):
            yield from super().join(other)
            return
        root_a, root_b = self.root, other.root
        if root_a.envelope is None or root_b.envelope is None:
            return
        if not root_a.envelope.intersects(root_b.envelope):
            return
        stack = [(root_a, root_b)]
        while stack:
            na, nb = stack.pop()
            if na.leaf and nb.leaf:
                for ia, ea in na.entries:
                    ea_min_x = ea.min_x
                    ea_min_y = ea.min_y
                    ea_max_x = ea.max_x
                    ea_max_y = ea.max_y
                    for ib, eb in nb.entries:
                        if (
                            eb.min_x <= ea_max_x
                            and ea_min_x <= eb.max_x
                            and eb.min_y <= ea_max_y
                            and ea_min_y <= eb.max_y
                        ):
                            yield ia, ib
            elif na.leaf:
                env_a = na.envelope
                stack.extend(
                    (na, child)
                    for child, env in nb.entries
                    if env.intersects(env_a)
                )
            elif nb.leaf or na.envelope.area >= nb.envelope.area:
                env_b = nb.envelope
                stack.extend(
                    (child, nb)
                    for child, env in na.entries
                    if env.intersects(env_b)
                )
            else:
                env_a = na.envelope
                stack.extend(
                    (na, child)
                    for child, env in nb.entries
                    if env.intersects(env_a)
                )

    def nearest(self, x: float, y: float, k: int = 1) -> List[int]:
        """Best-first search over node envelopes (exact for envelopes)."""
        result: List[int] = []
        if k <= 0:
            return result
        for item_id, _dist in self.nearest_iter(x, y):
            result.append(item_id)
            if len(result) >= k:
                break
        return result

    def nearest_iter(self, x: float, y: float):
        """Stream (item_id, envelope distance) best-first (Hjaltason-Samet)."""
        if self.root.envelope is None:
            return
        counter = 0
        heap: List[Tuple[float, int, bool, object]] = [
            (self.root.envelope.distance_to_point(x, y), counter, False, self.root)
        ]
        while heap:
            dist, _c, is_item, payload = heapq.heappop(heap)
            if is_item:
                yield payload, dist  # type: ignore[misc]
                continue
            node: _Node = payload  # type: ignore[assignment]
            for entry, env in node.entries:
                counter += 1
                heapq.heappush(
                    heap,
                    (env.distance_to_point(x, y), counter, node.leaf, entry),
                )

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        h = 1
        node = self.root
        while not node.leaf:
            h += 1
            node = node.entries[0][0]  # type: ignore[assignment]
        return h

    # -- bulk loading ------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls, items: Iterable[Tuple[int, Envelope]], max_entries: int = 16
    ) -> "RTree":
        """Sort-Tile-Recursive packing."""
        entries: List[Tuple[object, Envelope]] = [
            (item_id, env) for item_id, env in items
        ]
        tree = cls(max_entries=max_entries)
        tree._size = len(entries)
        if not entries:
            return tree
        level = _str_pack_leaves(entries, max_entries)
        while len(level) > 1:
            level = _str_pack_inner(level, max_entries)
        tree.root = level[0]
        return tree


def _str_pack_leaves(
    entries: List[Tuple[object, Envelope]], max_entries: int
) -> List[_Node]:
    def center(entry: Tuple[object, Envelope]) -> Tuple[float, float]:
        return entry[1].center

    return _str_pack(entries, max_entries, center, leaf=True)


def _str_pack_inner(nodes: List[_Node], max_entries: int) -> List[_Node]:
    entries = [(node, node.envelope) for node in nodes]

    def center(entry: Tuple[object, Envelope]) -> Tuple[float, float]:
        return entry[1].center

    return _str_pack(entries, max_entries, center, leaf=False)


def _str_pack(entries, max_entries, center, leaf: bool) -> List[_Node]:
    n = len(entries)
    per_node = max_entries
    node_count = math.ceil(n / per_node)
    slice_count = max(1, math.ceil(math.sqrt(node_count)))
    per_slice = slice_count * per_node
    entries = sorted(entries, key=lambda e: center(e)[0])
    nodes: List[_Node] = []
    for s in range(0, n, per_slice):
        vertical = sorted(entries[s : s + per_slice], key=lambda e: center(e)[1])
        for t in range(0, len(vertical), per_node):
            node = _Node(leaf=leaf)
            node.entries = list(vertical[t : t + per_node])
            node.recompute()
            nodes.append(node)
    return nodes
