"""Spatial index implementations: R-tree, uniform grid, PR quadtree, scan.

All indexes speak the :class:`repro.index.base.SpatialIndex` interface so
that engine profiles (and the J-A2 ablation benchmark) can swap them
freely.
"""

from typing import Dict, Type

from repro.index.base import SpatialIndex
from repro.index.grid import GridIndex
from repro.index.noindex import LinearScanIndex
from repro.index.quadtree import QuadTree
from repro.index.rtree import RTree

INDEX_KINDS: Dict[str, Type[SpatialIndex]] = {
    RTree.kind: RTree,
    GridIndex.kind: GridIndex,
    QuadTree.kind: QuadTree,
    LinearScanIndex.kind: LinearScanIndex,
}


def make_index(kind: str, **kwargs) -> SpatialIndex:
    """Instantiate an index by kind name (``rtree``/``grid``/``quadtree``/``scan``)."""
    try:
        cls = INDEX_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown index kind {kind!r}; expected one of {sorted(INDEX_KINDS)}"
        )
    return cls(**kwargs)


__all__ = [
    "SpatialIndex",
    "RTree",
    "GridIndex",
    "QuadTree",
    "LinearScanIndex",
    "INDEX_KINDS",
    "make_index",
]
