"""Linear-scan "index": the no-index baseline.

Exists so the planner can treat index presence uniformly, and so the
index-effect experiment (J-F5) can flip between a real index and a full
scan without changing any other code.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Tuple

from repro.geometry.base import Envelope
from repro.index.base import SpatialIndex


class LinearScanIndex(SpatialIndex):
    kind = "scan"

    def __init__(self) -> None:
        self._items: List[Tuple[int, Envelope]] = []

    def insert(self, item_id: int, envelope: Envelope) -> None:
        self._items.append((item_id, envelope))

    def remove(self, item_id: int, envelope: Envelope) -> bool:
        for i, (stored_id, stored_env) in enumerate(self._items):
            if stored_id == item_id and stored_env == envelope:
                self._items.pop(i)
                return True
        return False

    def search(self, envelope: Envelope) -> List[int]:
        return [
            item_id for item_id, env in self._items if env.intersects(envelope)
        ]

    def items(self):
        yield from self._items

    def nearest(self, x: float, y: float, k: int = 1) -> List[int]:
        ranked = heapq.nsmallest(
            k, self._items, key=lambda item: item[1].distance_to_point(x, y)
        )
        return [item_id for item_id, _env in ranked]

    def nearest_iter(self, x: float, y: float):
        ranked = sorted(
            ((env.distance_to_point(x, y), item_id)
             for item_id, env in self._items),
        )
        for dist, item_id in ranked:
            yield item_id, dist

    def __len__(self) -> int:
        return len(self._items)
