"""Common interface for spatial indexes.

Every index maps integer item ids to envelopes and answers three queries:
envelope search (the filter step of every spatial predicate), point
queries, and nearest-neighbour. Engines pick their index class through the
profile system (R-tree for ``greenwood``/``bluestem``, quadtree for
``ironbark``), and experiment J-A2 races the implementations directly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.geometry.base import Envelope


class SpatialIndex:
    """Abstract spatial index over ``(item_id, envelope)`` pairs."""

    #: human-readable name used in benchmark reports
    kind: str = "abstract"

    def insert(self, item_id: int, envelope: Envelope) -> None:
        raise NotImplementedError

    def remove(self, item_id: int, envelope: Envelope) -> bool:
        """Remove one entry; returns False when it was not present."""
        raise NotImplementedError

    def search(self, envelope: Envelope) -> List[int]:
        """Ids of all items whose envelope intersects the query envelope."""
        raise NotImplementedError

    def search_point(self, x: float, y: float) -> List[int]:
        return self.search(Envelope(x, y, x, y))

    def nearest(self, x: float, y: float, k: int = 1) -> List[int]:
        """Ids of the k items with smallest envelope distance to (x, y)."""
        raise NotImplementedError

    def nearest_iter(self, x: float, y: float) -> Iterator[Tuple[int, float]]:
        """Stream ``(item_id, envelope_distance)`` in nondecreasing
        envelope-distance order.

        The envelope distance is a lower bound on the true geometry
        distance, which makes this iterator the engine's substrate for
        exact KNN (best-first search with exact re-ranking). The default
        materialises and sorts everything; tree indexes override with
        incremental heap traversal.
        """
        ranked = self.nearest(x, y, k=len(self))
        for item_id in ranked:
            yield item_id, 0.0  # distance unknown in the fallback

    def items(self) -> Iterator[Tuple[int, Envelope]]:
        """Every ``(item_id, envelope)`` entry, order unspecified."""
        raise NotImplementedError

    def join(self, other: "SpatialIndex") -> Iterator[Tuple[int, int]]:
        """All ``(self_id, other_id)`` pairs with intersecting envelopes.

        The generic implementation probes ``other`` once per own entry;
        tree indexes override it with a synchronized traversal that
        descends both structures at once and prunes non-intersecting
        node pairs. A self-join (``index.join(index)``) yields both
        orientations of every pair plus each ``(x, x)``, matching
        nested-loop join semantics.
        """
        search = other.search
        for item_id, env in self.items():
            for other_id in search(env):
                yield item_id, other_id

    def __len__(self) -> int:
        raise NotImplementedError

    @classmethod
    def bulk_load(
        cls, items: Iterable[Tuple[int, Envelope]], **kwargs
    ) -> "SpatialIndex":
        """Default bulk load: repeated insertion (subclasses override)."""
        index = cls(**kwargs)
        for item_id, envelope in items:
            index.insert(item_id, envelope)
        return index
