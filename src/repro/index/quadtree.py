"""PR quadtree with envelope items.

Models the tessellation-style indexing of the commercial DBMS in the
paper's comparison (the ``ironbark`` profile): space is recursively
quartered and an envelope is stored in the smallest quadrant that fully
contains it. Straddling envelopes stay at inner nodes, which is exactly
the behaviour that makes quadtree filters coarser than R-trees on long
skinny road segments — a shape difference J-A2 exposes.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Tuple

from repro.geometry.base import Envelope
from repro.index.base import SpatialIndex


class _QNode:
    __slots__ = ("bounds", "items", "children", "depth")

    def __init__(self, bounds: Envelope, depth: int):
        self.bounds = bounds
        self.items: List[Tuple[int, Envelope]] = []
        self.children: Optional[List["_QNode"]] = None
        self.depth = depth

    def quadrants(self) -> List[Envelope]:
        cx, cy = self.bounds.center
        b = self.bounds
        return [
            Envelope(b.min_x, b.min_y, cx, cy),
            Envelope(cx, b.min_y, b.max_x, cy),
            Envelope(b.min_x, cy, cx, b.max_y),
            Envelope(cx, cy, b.max_x, b.max_y),
        ]


class QuadTree(SpatialIndex):
    """Point-region quadtree storing envelopes at covering nodes."""

    kind = "quadtree"

    def __init__(
        self,
        bounds: Optional[Envelope] = None,
        max_items: int = 16,
        max_depth: int = 12,
    ):
        self.max_items = max_items
        self.max_depth = max_depth
        self._root: Optional[_QNode] = (
            _QNode(bounds, 0) if bounds is not None else None
        )
        self._pending: List[Tuple[int, Envelope]] = []
        self._size = 0

    def _ensure_root(self, env: Envelope) -> None:
        if self._root is None:
            # seed with a square around the first envelope
            margin = max(env.width, env.height, 1.0)
            self._root = _QNode(env.expanded(margin), 0)
        # grow the root while the envelope escapes it
        while not self._root.bounds.contains(env):
            old = self._root
            b = old.bounds
            grown = Envelope(
                b.min_x - b.width if env.min_x < b.min_x else b.min_x,
                b.min_y - b.height if env.min_y < b.min_y else b.min_y,
                b.max_x + b.width if env.max_x > b.max_x else b.max_x,
                b.max_y + b.height if env.max_y > b.max_y else b.max_y,
            )
            new_root = _QNode(grown, 0)
            new_root.items = []
            self._root = new_root
            # reinsert everything from the old tree
            for item in _all_items(old):
                self._insert_into(self._root, item)

    def insert(self, item_id: int, envelope: Envelope) -> None:
        self._ensure_root(envelope)
        self._insert_into(self._root, (item_id, envelope))  # type: ignore[arg-type]
        self._size += 1

    def _insert_into(self, node: _QNode, item: Tuple[int, Envelope]) -> None:
        _item_id, env = item
        while True:
            if node.children is not None:
                placed = False
                for child in node.children:
                    if child.bounds.contains(env):
                        node = child
                        placed = True
                        break
                if placed:
                    continue
                node.items.append(item)  # straddles the split lines
                return
            node.items.append(item)
            if len(node.items) > self.max_items and node.depth < self.max_depth:
                self._split(node)
                # after a split, straddlers stayed; nothing left to push
            return

    def _split(self, node: _QNode) -> None:
        node.children = [
            _QNode(q, node.depth + 1) for q in node.quadrants()
        ]
        keep: List[Tuple[int, Envelope]] = []
        for item in node.items:
            placed = False
            for child in node.children:
                if child.bounds.contains(item[1]):
                    child.items.append(item)
                    placed = True
                    break
            if not placed:
                keep.append(item)
        node.items = keep

    def remove(self, item_id: int, envelope: Envelope) -> bool:
        if self._root is None:
            return False
        node = self._root
        while True:
            for i, (stored_id, stored_env) in enumerate(node.items):
                if stored_id == item_id and stored_env == envelope:
                    node.items.pop(i)
                    self._size -= 1
                    return True
            if node.children is None:
                return False
            descended = False
            for child in node.children:
                if child.bounds.contains(envelope):
                    node = child
                    descended = True
                    break
            if not descended:
                return False

    def search(self, envelope: Envelope) -> List[int]:
        hits: List[int] = []
        if self._root is None:
            return hits
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.bounds.intersects(envelope):
                continue
            hits.extend(
                item_id
                for item_id, env in node.items
                if env.intersects(envelope)
            )
            if node.children is not None:
                stack.extend(node.children)
        return hits

    def items(self):
        """Every ``(item_id, envelope)`` entry (inner nodes hold straddlers)."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield from node.items
            if node.children is not None:
                stack.extend(node.children)

    def join(self, other):
        """Synchronized quadtree traversal join.

        Walks both trees in lockstep over node *pairs* whose bounds
        intersect. Because quadtrees keep straddling items at inner
        nodes, each pair job also schedules "these local items against
        that whole subtree" sweeps so no item level is missed; every
        candidate pair is produced exactly once.
        """
        if not isinstance(other, QuadTree):
            yield from super().join(other)
            return
        if self._root is None or other._root is None:
            return
        pair_jobs = [(self._root, other._root)]
        # (items, node, flipped): items from one tree vs a subtree of the
        # other; flipped=True when the items belong to ``other``
        sweep_jobs: List[Tuple[list, _QNode, bool]] = []
        while pair_jobs:
            na, nb = pair_jobs.pop()
            if not na.bounds.intersects(nb.bounds):
                continue
            for ia, ea in na.items:
                for ib, eb in nb.items:
                    if (
                        eb.min_x <= ea.max_x
                        and ea.min_x <= eb.max_x
                        and eb.min_y <= ea.max_y
                        and ea.min_y <= eb.max_y
                    ):
                        yield ia, ib
            if nb.children is not None and na.items:
                for child in nb.children:
                    sweep_jobs.append((na.items, child, False))
            if na.children is not None and nb.items:
                for child in na.children:
                    sweep_jobs.append((nb.items, child, True))
            if na.children is not None and nb.children is not None:
                for ca in na.children:
                    for cb in nb.children:
                        if ca.bounds.intersects(cb.bounds):
                            pair_jobs.append((ca, cb))
        while sweep_jobs:
            items, node, flipped = sweep_jobs.pop()
            live = [
                (i, e) for i, e in items if e.intersects(node.bounds)
            ]
            if not live:
                continue
            for ib, eb in node.items:
                for ia, ea in live:
                    if (
                        eb.min_x <= ea.max_x
                        and ea.min_x <= eb.max_x
                        and eb.min_y <= ea.max_y
                        and ea.min_y <= eb.max_y
                    ):
                        yield (ib, ia) if flipped else (ia, ib)
            if node.children is not None:
                for child in node.children:
                    sweep_jobs.append((live, child, flipped))

    def nearest(self, x: float, y: float, k: int = 1) -> List[int]:
        result: List[int] = []
        if k <= 0:
            return result
        for item_id, _dist in self.nearest_iter(x, y):
            result.append(item_id)
            if len(result) >= k:
                break
        return result

    def nearest_iter(self, x: float, y: float):
        """Stream (item_id, envelope distance) best-first."""
        if self._root is None:
            return
        counter = 0
        heap: List[Tuple[float, int, bool, object]] = [
            (self._root.bounds.distance_to_point(x, y), 0, False, self._root)
        ]
        while heap:
            dist, _c, is_item, payload = heapq.heappop(heap)
            if is_item:
                yield payload, dist  # type: ignore[misc]
                continue
            node: _QNode = payload  # type: ignore[assignment]
            for item_id, env in node.items:
                counter += 1
                heapq.heappush(
                    heap, (env.distance_to_point(x, y), counter, True, item_id)
                )
            if node.children is not None:
                for child in node.children:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (child.bounds.distance_to_point(x, y), counter, False, child),
                    )

    def __len__(self) -> int:
        return self._size

    @classmethod
    def bulk_load(
        cls,
        items: Iterable[Tuple[int, Envelope]],
        max_items: int = 16,
        max_depth: int = 12,
    ) -> "QuadTree":
        materialised = list(items)
        if not materialised:
            return cls(max_items=max_items, max_depth=max_depth)
        world = Envelope.union_all(env for _i, env in materialised).expanded(1.0)
        tree = cls(bounds=world, max_items=max_items, max_depth=max_depth)
        for item_id, env in materialised:
            tree._insert_into(tree._root, (item_id, env))  # type: ignore[arg-type]
            tree._size += 1
        return tree


def _all_items(node: _QNode) -> List[Tuple[int, Envelope]]:
    items = list(node.items)
    if node.children is not None:
        for child in node.children:
            items.extend(_all_items(child))
    return items
