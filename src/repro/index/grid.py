"""Uniform grid spatial index.

The simplest filter structure: hash each envelope into every fixed-size
cell it overlaps. Great on uniformly distributed data, degenerate on
skew — one of the effects experiment J-A2 measures against the R-tree
and quadtree.
"""

from __future__ import annotations

import heapq
import math
from itertools import islice
from typing import Dict, Iterable, List, Set, Tuple

from repro.geometry.base import Envelope
from repro.index.base import SpatialIndex


class GridIndex(SpatialIndex):
    """Fixed-cell-size uniform grid."""

    kind = "grid"

    def __init__(self, cell_size: float = 1.0):
        if cell_size <= 0.0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], List[Tuple[int, Envelope]]] = {}
        self._size = 0

    def _cell_range(self, env: Envelope):
        c = self.cell_size
        x0 = math.floor(env.min_x / c)
        x1 = math.floor(env.max_x / c)
        y0 = math.floor(env.min_y / c)
        y1 = math.floor(env.max_y / c)
        for gx in range(x0, x1 + 1):
            for gy in range(y0, y1 + 1):
                yield (gx, gy)

    def _overlapping_cells(self, env: Envelope):
        """Occupied-aware variant of :meth:`_cell_range` for lookups.

        When the envelope's cell range is larger than the occupied cell
        count — a large query window over a tiny cell size can span
        astronomically many coordinates — probe the occupied cells
        against the range instead of enumerating it. Lookups only ever
        need cells that exist."""
        c = self.cell_size
        x0 = math.floor(env.min_x / c)
        x1 = math.floor(env.max_x / c)
        y0 = math.floor(env.min_y / c)
        y1 = math.floor(env.max_y / c)
        if (x1 - x0 + 1) * (y1 - y0 + 1) > len(self._cells):
            for gx, gy in self._cells:
                if x0 <= gx <= x1 and y0 <= gy <= y1:
                    yield (gx, gy)
            return
        for gx in range(x0, x1 + 1):
            for gy in range(y0, y1 + 1):
                yield (gx, gy)

    def insert(self, item_id: int, envelope: Envelope) -> None:
        for cell in self._cell_range(envelope):
            self._cells.setdefault(cell, []).append((item_id, envelope))
        self._size += 1

    def remove(self, item_id: int, envelope: Envelope) -> bool:
        found = False
        # materialised: empty buckets are deleted mid-loop
        for cell in list(self._overlapping_cells(envelope)):
            bucket = self._cells.get(cell)
            if not bucket:
                continue
            before = len(bucket)
            bucket[:] = [
                (i, e) for i, e in bucket if not (i == item_id and e == envelope)
            ]
            if len(bucket) < before:
                found = True
            if not bucket:
                del self._cells[cell]
        if found:
            self._size -= 1
        return found

    def search(self, envelope: Envelope) -> List[int]:
        seen: Set[int] = set()
        hits: List[int] = []
        for cell in self._overlapping_cells(envelope):
            for item_id, env in self._cells.get(cell, ()):
                if item_id not in seen and env.intersects(envelope):
                    seen.add(item_id)
                    hits.append(item_id)
        return hits

    def items(self):
        """Every ``(item_id, envelope)`` entry, deduplicated across cells."""
        seen: Set[int] = set()
        for bucket in self._cells.values():
            for item_id, env in bucket:
                if item_id not in seen:
                    seen.add(item_id)
                    yield item_id, env

    def _ring_cells(self, cx: int, cy: int, radius: int):
        """Cell coordinates on the Chebyshev ring of ``radius``."""
        if radius == 0:
            yield (cx, cy)
            return
        for gx in range(cx - radius, cx + radius + 1):
            yield (gx, cy - radius)
            yield (gx, cy + radius)
        for gy in range(cy - radius + 1, cy + radius):
            yield (cx - radius, gy)
            yield (cx + radius, gy)

    def nearest(self, x: float, y: float, k: int = 1) -> List[int]:
        """Expanding ring search over grid cells.

        Rings are scanned outward until the k-th best candidate distance
        is certified (no unscanned cell can be closer) or the occupied
        grid extent is exhausted. The enumerated area is capped at a
        small multiple of the occupied cell count: with a tiny cell size
        or a faraway query point the certification radius can dwarf the
        occupied extent by many orders of magnitude, and enumerating
        empty coordinates up to it would never finish. Past the cap the
        search falls back to the materialised full ranking — same
        answers, work bounded by the table size.
        """
        if self._size == 0 or k <= 0 or not self._cells:
            return []
        c = self.cell_size
        cx, cy = math.floor(x / c), math.floor(y / c)
        gxs = [g for g, _ in self._cells]
        gys = [g for _, g in self._cells]
        max_radius = max(
            abs(cx - min(gxs)), abs(cx - max(gxs)),
            abs(cy - min(gys)), abs(cy - max(gys)),
        )
        # (2r+1)^2 cells lie within radius r; invert the cell budget to
        # a radius cap
        budget = 4 * len(self._cells) + 64
        capped = min(max_radius, (math.isqrt(budget) - 1) // 2)
        best: Dict[int, float] = {}
        certified = False
        for radius in range(capped + 1):
            for cell in self._ring_cells(cx, cy, radius):
                for item_id, env in self._cells.get(cell, ()):
                    d = env.distance_to_point(x, y)
                    if item_id not in best or d < best[item_id]:
                        best[item_id] = d
            if len(best) >= k:
                # every unscanned cell is at least radius*c away
                kth = heapq.nsmallest(k, best.values())[-1]
                if radius * c >= kth:
                    certified = True
                    break
        if not certified and capped < max_radius:
            ranked_iter = self.nearest_iter(x, y)
            return [item_id for item_id, _d in islice(ranked_iter, k)]
        ranked = sorted(best.items(), key=lambda kv: kv[1])
        return [item_id for item_id, _d in ranked[:k]]

    def nearest_iter(self, x: float, y: float):
        """Full materialised ranking (grids have no cheap best-first walk)."""
        best: Dict[int, float] = {}
        for bucket in self._cells.values():
            for item_id, env in bucket:
                d = env.distance_to_point(x, y)
                if item_id not in best or d < best[item_id]:
                    best[item_id] = d
        for item_id, dist in sorted(best.items(), key=lambda kv: kv[1]):
            yield item_id, dist

    def __len__(self) -> int:
        return self._size

    @classmethod
    def bulk_load(
        cls, items: Iterable[Tuple[int, Envelope]], cell_size: float = None  # type: ignore[assignment]
    ) -> "GridIndex":
        """Pick a cell size from the data when not given.

        The heuristic is ~2x the mean item extent, floored by a fraction
        of the overall data extent — the floor matters for point layers,
        whose items have zero extent: without it the cell size collapses
        and a window search would have to enumerate astronomically many
        cells.
        """
        materialised = list(items)
        if cell_size is None:
            if materialised:
                spans = [
                    max(env.width, env.height, 1e-9)
                    for _i, env in materialised
                ]
                world = Envelope.union_all(env for _i, env in materialised)
                floor = max(world.width, world.height, 1e-9) / 64.0
                cell_size = max(2.0 * sum(spans) / len(spans), floor)
            else:
                cell_size = 1.0
        index = cls(cell_size=cell_size)
        for item_id, env in materialised:
            index.insert(item_id, env)
        return index
