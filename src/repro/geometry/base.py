"""Core geometry model: envelopes and the abstract ``Geometry`` base.

The model follows the OGC Simple Features specification (the same model the
paper's DE-9IM micro benchmark is defined over): every geometry has a
*dimension* (0 for points, 1 for curves, 2 for surfaces), an *envelope*
(axis-aligned bounding box), a *boundary*, and WKT/WKB serialisations.

Geometries are immutable value objects; all coordinates are 2-D floats.
"""

from __future__ import annotations

import enum
import math
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import GeometryError

Coord = Tuple[float, float]


class GeometryType(enum.Enum):
    """OGC simple-feature type tags (also used as WKB type codes)."""

    POINT = 1
    LINESTRING = 2
    POLYGON = 3
    MULTIPOINT = 4
    MULTILINESTRING = 5
    MULTIPOLYGON = 6
    GEOMETRYCOLLECTION = 7

    @property
    def wkt_name(self) -> str:
        return self.name


class Envelope:
    """An axis-aligned bounding rectangle (possibly degenerate or empty).

    Envelopes are the filter-step currency of the whole system: spatial
    indexes store them, the ``bluestem`` engine profile evaluates topological
    predicates *only* on them (MBR semantics), and the exact engines use them
    to short-circuit expensive DE-9IM evaluation.
    """

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    def __init__(self, min_x: float, min_y: float, max_x: float, max_y: float):
        if min_x > max_x or min_y > max_y:
            raise GeometryError(
                f"inverted envelope: ({min_x}, {min_y}, {max_x}, {max_y})"
            )
        self.min_x = float(min_x)
        self.min_y = float(min_y)
        self.max_x = float(max_x)
        self.max_y = float(max_y)

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_coords(cls, coords: Iterable[Coord]) -> "Envelope":
        it = iter(coords)
        try:
            x, y = next(it)
        except StopIteration:
            raise GeometryError("cannot build an envelope from zero coordinates")
        min_x = max_x = x
        min_y = max_y = y
        for x, y in it:
            if x < min_x:
                min_x = x
            elif x > max_x:
                max_x = x
            if y < min_y:
                min_y = y
            elif y > max_y:
                max_y = y
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def union_all(cls, envelopes: Iterable["Envelope"]) -> "Envelope":
        it = iter(envelopes)
        try:
            first = next(it)
        except StopIteration:
            raise GeometryError("cannot union zero envelopes")
        min_x, min_y = first.min_x, first.min_y
        max_x, max_y = first.max_x, first.max_y
        for env in it:
            min_x = min(min_x, env.min_x)
            min_y = min(min_y, env.min_y)
            max_x = max(max_x, env.max_x)
            max_y = max(max_y, env.max_y)
        return cls(min_x, min_y, max_x, max_y)

    # -- derived properties ----------------------------------------------

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Coord:
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    # -- relations ---------------------------------------------------------

    def intersects(self, other: "Envelope") -> bool:
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def contains(self, other: "Envelope") -> bool:
        return (
            self.min_x <= other.min_x
            and self.max_x >= other.max_x
            and self.min_y <= other.min_y
            and self.max_y >= other.max_y
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def intersection(self, other: "Envelope") -> Optional["Envelope"]:
        if not self.intersects(other):
            return None
        return Envelope(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def union(self, other: "Envelope") -> "Envelope":
        return Envelope(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def tolerance(self) -> float:
        """Margin matched to this envelope's coordinate scale.

        Coordinates derived by the overlay (segment intersection points)
        carry relative rounding error, so exact envelope comparisons can
        reject points the tolerant segment predicates would classify as
        ON the geometry. 1e-9 relative is far above float rounding noise
        yet far below any feature size the benchmark generates.
        """
        scale = max(
            abs(self.min_x),
            abs(self.min_y),
            abs(self.max_x),
            abs(self.max_y),
            1.0,
        )
        return 1e-9 * scale

    def padded(self) -> "Envelope":
        """This envelope expanded by its own relative tolerance."""
        return self.expanded(self.tolerance())

    def expanded(self, margin: float) -> "Envelope":
        return Envelope(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def distance(self, other: "Envelope") -> float:
        """Minimum distance between two envelopes (0 when they intersect)."""
        dx = max(other.min_x - self.max_x, self.min_x - other.max_x, 0.0)
        dy = max(other.min_y - self.max_y, self.min_y - other.max_y, 0.0)
        return math.hypot(dx, dy)

    def distance_to_point(self, x: float, y: float) -> float:
        dx = max(self.min_x - x, x - self.max_x, 0.0)
        dy = max(self.min_y - y, y - self.max_y, 0.0)
        return math.hypot(dx, dy)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Envelope):
            return NotImplemented
        return (
            self.min_x == other.min_x
            and self.min_y == other.min_y
            and self.max_x == other.max_x
            and self.max_y == other.max_y
        )

    def __hash__(self) -> int:
        return hash((self.min_x, self.min_y, self.max_x, self.max_y))

    def __repr__(self) -> str:
        return (
            f"Envelope({self.min_x:g}, {self.min_y:g}, "
            f"{self.max_x:g}, {self.max_y:g})"
        )

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.min_x, self.min_y, self.max_x, self.max_y)


class Geometry:
    """Abstract base for all geometry classes.

    Subclasses must provide :attr:`geom_type`, :meth:`coords_iter`,
    :attr:`dimension`, :attr:`is_empty` and equality-related plumbing.
    Topological and analysis operations live in :mod:`repro.algorithms`
    and are exposed here as thin methods so that user code reads naturally
    (``a.intersects(b)``, ``a.buffer(10)``).
    """

    __slots__ = ("_envelope", "_features")

    geom_type: GeometryType

    def __init__(self) -> None:
        self._envelope: Optional[Envelope] = None
        # lazily-built DE-9IM feature decomposition (see
        # repro.algorithms.de9im); geometries are immutable, so caching it
        # here is the "prepared geometry" optimisation real engines apply
        # to repeated predicate probes
        self._features = None

    # -- structure (abstract) ----------------------------------------------

    @property
    def dimension(self) -> int:
        """Topological dimension: 0, 1 or 2 (-1 for the empty geometry)."""
        raise NotImplementedError

    @property
    def is_empty(self) -> bool:
        raise NotImplementedError

    def coords_iter(self) -> Iterator[Coord]:
        """Iterate over every vertex of the geometry."""
        raise NotImplementedError

    @property
    def num_points(self) -> int:
        return sum(1 for _ in self.coords_iter())

    # -- envelope -----------------------------------------------------------

    @property
    def envelope(self) -> Envelope:
        """The geometry's minimum bounding rectangle (cached)."""
        if self._envelope is None:
            self._envelope = Envelope.from_coords(self.coords_iter())
        return self._envelope

    def envelope_geometry(self) -> "Geometry":
        """The envelope as a Polygon geometry (``ST_Envelope`` semantics)."""
        from repro.geometry.polygon import Polygon

        env = self.envelope
        if env.width == 0.0 and env.height == 0.0:
            from repro.geometry.point import Point

            return Point(env.min_x, env.min_y)
        if env.width == 0.0 or env.height == 0.0:
            from repro.geometry.linestring import LineString

            return LineString([(env.min_x, env.min_y), (env.max_x, env.max_y)])
        return Polygon(
            [
                (env.min_x, env.min_y),
                (env.max_x, env.min_y),
                (env.max_x, env.max_y),
                (env.min_x, env.max_y),
                (env.min_x, env.min_y),
            ]
        )

    # -- serialisation --------------------------------------------------------

    def wkt(self, precision: int = 12) -> str:
        from repro.geometry.wkt import dumps

        return dumps(self, precision=precision)

    def wkb(self) -> bytes:
        from repro.geometry.wkb import dumps

        return dumps(self)

    # -- topological predicates (delegating to repro.algorithms) --------------

    def relate(self, other: "Geometry") -> str:
        from repro.algorithms.de9im import relate

        return str(relate(self, other))

    def equals(self, other: "Geometry") -> bool:
        from repro.algorithms.de9im import equals

        return equals(self, other)

    def disjoint(self, other: "Geometry") -> bool:
        from repro.algorithms.de9im import disjoint

        return disjoint(self, other)

    def intersects(self, other: "Geometry") -> bool:
        from repro.algorithms.de9im import intersects

        return intersects(self, other)

    def touches(self, other: "Geometry") -> bool:
        from repro.algorithms.de9im import touches

        return touches(self, other)

    def crosses(self, other: "Geometry") -> bool:
        from repro.algorithms.de9im import crosses

        return crosses(self, other)

    def within(self, other: "Geometry") -> bool:
        from repro.algorithms.de9im import within

        return within(self, other)

    def contains(self, other: "Geometry") -> bool:
        from repro.algorithms.de9im import contains

        return contains(self, other)

    def overlaps(self, other: "Geometry") -> bool:
        from repro.algorithms.de9im import overlaps

        return overlaps(self, other)

    def covers(self, other: "Geometry") -> bool:
        from repro.algorithms.de9im import covers

        return covers(self, other)

    def covered_by(self, other: "Geometry") -> bool:
        from repro.algorithms.de9im import covered_by

        return covered_by(self, other)

    # -- analysis operations ---------------------------------------------------

    def distance(self, other: "Geometry") -> float:
        from repro.algorithms.distance import distance

        return distance(self, other)

    def area(self) -> float:
        from repro.algorithms.measures import area

        return area(self)

    def length(self) -> float:
        from repro.algorithms.measures import length

        return length(self)

    def centroid(self) -> "Geometry":
        from repro.algorithms.measures import centroid

        return centroid(self)

    def point_on_surface(self) -> "Geometry":
        from repro.algorithms.measures import point_on_surface

        return point_on_surface(self)

    def convex_hull(self) -> "Geometry":
        from repro.algorithms.convexhull import convex_hull

        return convex_hull(self)

    def buffer(self, radius: float, quad_segs: int = 8) -> "Geometry":
        from repro.algorithms.buffer import buffer

        return buffer(self, radius, quad_segs=quad_segs)

    def intersection(self, other: "Geometry") -> "Geometry":
        from repro.algorithms.overlay import intersection

        return intersection(self, other)

    def union(self, other: "Geometry") -> "Geometry":
        from repro.algorithms.overlay import union

        return union(self, other)

    def difference(self, other: "Geometry") -> "Geometry":
        from repro.algorithms.overlay import difference

        return difference(self, other)

    def sym_difference(self, other: "Geometry") -> "Geometry":
        from repro.algorithms.overlay import sym_difference

        return sym_difference(self, other)

    def simplify(self, tolerance: float) -> "Geometry":
        from repro.algorithms.simplify import simplify

        return simplify(self, tolerance)

    # -- dunder ------------------------------------------------------------------

    def __repr__(self) -> str:
        text = self.wkt(precision=6)
        if len(text) > 80:
            text = text[:77] + "..."
        return f"<{type(self).__name__} {text}>"

    def __eq__(self, other: object) -> bool:
        """Structural equality (same type, same coordinates in order).

        Topological equality (``POINT(0 0)`` vs ``MULTIPOINT(0 0)``) is
        :meth:`equals`, matching the OGC split between ``=`` and
        ``ST_Equals``.
        """
        if type(self) is not type(other):
            return NotImplemented
        return self._struct_key() == other._struct_key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._struct_key()))

    def _struct_key(self) -> tuple:
        raise NotImplementedError


def clean_coords(coords: Sequence[Coord], what: str) -> Tuple[Coord, ...]:
    """Validate and normalise a coordinate sequence to float tuples."""
    out = []
    for raw in coords:
        try:
            x, y = raw
        except (TypeError, ValueError):
            raise GeometryError(f"{what}: coordinate {raw!r} is not an (x, y) pair")
        x = float(x)
        y = float(y)
        if not (math.isfinite(x) and math.isfinite(y)):
            raise GeometryError(f"{what}: non-finite coordinate ({x}, {y})")
        out.append((x, y))
    return tuple(out)
