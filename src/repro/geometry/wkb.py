"""Well-Known Binary reader and writer.

Implements the OGC WKB encoding (byte-order flag, uint32 type code,
IEEE-754 doubles). Both little- and big-endian inputs are accepted; output
is little-endian, matching what the popular databases emit by default.
The benchmark's data-loading component ships geometries into the engines
as WKB, so this path is on the hot loop of experiment J-T3/J-F4.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.errors import WkbParseError
from repro.geometry.base import Coord, Geometry, GeometryType
from repro.geometry.collection import GeometryCollection
from repro.geometry.linestring import LineString, MultiLineString
from repro.geometry.point import MultiPoint, Point
from repro.geometry.polygon import MultiPolygon, Polygon

_LE, _BE = 1, 0


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise WkbParseError("unexpected end of WKB")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def uint32(self, order: str) -> int:
        end = self.pos + 4
        if end > len(self.data):
            raise WkbParseError("unexpected end of WKB reading uint32")
        (value,) = struct.unpack_from(order + "I", self.data, self.pos)
        self.pos = end
        return value

    def coord(self, order: str) -> Coord:
        end = self.pos + 16
        if end > len(self.data):
            raise WkbParseError("unexpected end of WKB reading coordinate")
        x, y = struct.unpack_from(order + "dd", self.data, self.pos)
        self.pos = end
        return (x, y)

    def coords(self, order: str) -> List[Coord]:
        n = self.uint32(order)
        if n > (len(self.data) - self.pos) // 16:
            raise WkbParseError(f"coordinate count {n} exceeds buffer")
        return [self.coord(order) for _ in range(n)]

    def rings(self, order: str) -> List[List[Coord]]:
        n = self.uint32(order)
        return [self.coords(order) for _ in range(n)]


def _read_geometry(r: _Reader) -> Geometry:
    endian = r.byte()
    if endian == _LE:
        order = "<"
    elif endian == _BE:
        order = ">"
    else:
        raise WkbParseError(f"bad byte-order flag {endian}")
    raw_type = r.uint32(order)
    base_type = raw_type & 0xFF  # strip any SRID/dimension flag bits
    try:
        geom_type = GeometryType(base_type)
    except ValueError:
        raise WkbParseError(f"unknown WKB geometry type {raw_type}")

    if geom_type is GeometryType.POINT:
        return Point(*r.coord(order))
    if geom_type is GeometryType.LINESTRING:
        return LineString(r.coords(order))
    if geom_type is GeometryType.POLYGON:
        rings = r.rings(order)
        if not rings:
            raise WkbParseError("polygon with zero rings")
        return Polygon(rings[0], rings[1:])

    # Multi-types and collections embed full WKB geometries.
    n = r.uint32(order)
    members = [_read_geometry(r) for _ in range(n)]
    if geom_type is GeometryType.MULTIPOINT:
        if not all(isinstance(m, Point) for m in members):
            raise WkbParseError("MULTIPOINT member is not a point")
        return MultiPoint(members)
    if geom_type is GeometryType.MULTILINESTRING:
        if not all(isinstance(m, LineString) for m in members):
            raise WkbParseError("MULTILINESTRING member is not a linestring")
        return MultiLineString(members)
    if geom_type is GeometryType.MULTIPOLYGON:
        if not all(isinstance(m, Polygon) for m in members):
            raise WkbParseError("MULTIPOLYGON member is not a polygon")
        return MultiPolygon(members)
    return GeometryCollection(members)


def loads(data: bytes) -> Geometry:
    """Parse WKB bytes into a geometry."""
    r = _Reader(bytes(data))
    geom = _read_geometry(r)
    if r.pos != len(r.data):
        raise WkbParseError(f"{len(r.data) - r.pos} trailing bytes after geometry")
    return geom


# ---------------------------------------------------------------------------
# writer (always little-endian)
# ---------------------------------------------------------------------------


def _write_coords(out: List[bytes], coords: Tuple[Coord, ...]) -> None:
    out.append(struct.pack("<I", len(coords)))
    for x, y in coords:
        out.append(struct.pack("<dd", x, y))


def _write_geometry(out: List[bytes], geom: Geometry) -> None:
    out.append(b"\x01")  # little-endian
    out.append(struct.pack("<I", geom.geom_type.value))
    if isinstance(geom, Point):
        out.append(struct.pack("<dd", geom.x, geom.y))
    elif isinstance(geom, LineString):
        _write_coords(out, geom.coords)
    elif isinstance(geom, Polygon):
        rings = tuple(geom.rings())
        out.append(struct.pack("<I", len(rings)))
        for ring in rings:
            _write_coords(out, ring)
    elif isinstance(geom, MultiPoint):
        out.append(struct.pack("<I", len(geom.points)))
        for point in geom.points:
            _write_geometry(out, point)
    elif isinstance(geom, MultiLineString):
        out.append(struct.pack("<I", len(geom.lines)))
        for line in geom.lines:
            _write_geometry(out, line)
    elif isinstance(geom, MultiPolygon):
        out.append(struct.pack("<I", len(geom.polygons)))
        for poly in geom.polygons:
            _write_geometry(out, poly)
    elif isinstance(geom, GeometryCollection):
        out.append(struct.pack("<I", len(geom.geoms)))
        for member in geom.geoms:
            _write_geometry(out, member)
    else:
        raise TypeError(f"cannot serialise {type(geom).__name__}")


def dumps(geom: Geometry) -> bytes:
    """Serialise a geometry to little-endian WKB bytes."""
    out: List[bytes] = []
    _write_geometry(out, geom)
    return b"".join(out)
