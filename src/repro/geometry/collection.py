"""GeometryCollection: a heterogeneous bag of geometries.

Overlay operations return collections when the result mixes dimensions
(e.g. the intersection of two polygons that share both an edge and an
area). An *empty* collection doubles as the canonical empty geometry
(``GEOMETRYCOLLECTION EMPTY``), which is what ``ST_Intersection`` returns
for disjoint inputs.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.geometry.base import Coord, Geometry, GeometryType


class GeometryCollection(Geometry):
    __slots__ = ("geoms",)

    geom_type = GeometryType.GEOMETRYCOLLECTION

    def __init__(self, geoms: Sequence[Geometry] = ()):
        super().__init__()
        flat = []
        for g in geoms:
            if isinstance(g, GeometryCollection):
                flat.extend(g.geoms)
            else:
                flat.append(g)
        self.geoms: Tuple[Geometry, ...] = tuple(flat)

    @property
    def dimension(self) -> int:
        if not self.geoms:
            return -1
        return max(g.dimension for g in self.geoms)

    @property
    def is_empty(self) -> bool:
        return not self.geoms

    def coords_iter(self) -> Iterator[Coord]:
        for g in self.geoms:
            yield from g.coords_iter()

    def __len__(self) -> int:
        return len(self.geoms)

    def __iter__(self) -> Iterator[Geometry]:
        return iter(self.geoms)

    def __getitem__(self, idx: int) -> Geometry:
        return self.geoms[idx]

    def _struct_key(self) -> tuple:
        return tuple(
            (type(g).__name__, g._struct_key()) for g in self.geoms
        )


EMPTY = GeometryCollection(())
