"""Polygon and MultiPolygon geometries.

A polygon is an exterior ring (shell) plus zero or more interior rings
(holes). Rings are stored closed (first coordinate == last) and oriented
canonically: shell counter-clockwise, holes clockwise. Construction
normalises orientation so that downstream algorithms (overlay, point
location, area) can rely on it.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.base import Coord, Geometry, GeometryType, clean_coords
from repro.geometry.linestring import LineString, MultiLineString


def signed_ring_area(coords: Sequence[Coord]) -> float:
    """Shoelace signed area of a closed ring (positive = counter-clockwise)."""
    total = 0.0
    for (ax, ay), (bx, by) in zip(coords, coords[1:]):
        total += ax * by - bx * ay
    return total / 2.0


def _close_ring(coords: Sequence[Coord], what: str) -> Tuple[Coord, ...]:
    ring = clean_coords(coords, what)
    if len(ring) < 3:
        raise GeometryError(f"{what}: a ring needs at least three coordinates")
    if ring[0] != ring[-1]:
        ring = ring + (ring[0],)
    if len(ring) < 4:
        raise GeometryError(f"{what}: a closed ring needs at least four coordinates")
    if signed_ring_area(ring) == 0.0:
        raise GeometryError(f"{what}: ring has zero area")
    return ring


class Polygon(Geometry):
    """A simple polygon with optional holes (dimension 2)."""

    __slots__ = ("shell", "holes")

    geom_type = GeometryType.POLYGON

    def __init__(
        self,
        shell: Sequence[Coord],
        holes: Optional[Sequence[Sequence[Coord]]] = None,
    ):
        super().__init__()
        ring = _close_ring(shell, "Polygon shell")
        if signed_ring_area(ring) < 0.0:
            ring = tuple(reversed(ring))
        self.shell: Tuple[Coord, ...] = ring
        fixed_holes: List[Tuple[Coord, ...]] = []
        for i, hole in enumerate(holes or ()):
            hring = _close_ring(hole, f"Polygon hole {i}")
            if signed_ring_area(hring) > 0.0:
                hring = tuple(reversed(hring))
            fixed_holes.append(hring)
        self.holes: Tuple[Tuple[Coord, ...], ...] = tuple(fixed_holes)

    @property
    def dimension(self) -> int:
        return 2

    @property
    def is_empty(self) -> bool:
        return False

    def coords_iter(self) -> Iterator[Coord]:
        yield from self.shell
        for hole in self.holes:
            yield from hole

    def rings(self) -> Iterator[Tuple[Coord, ...]]:
        """All rings: shell first, then holes."""
        yield self.shell
        yield from self.holes

    def segments(self) -> Iterator[Tuple[Coord, Coord]]:
        for ring in self.rings():
            for a, b in zip(ring, ring[1:]):
                if a != b:
                    yield (a, b)

    def boundary(self) -> Geometry:
        rings = [LineString(r) for r in self.rings()]
        if len(rings) == 1:
            return rings[0]
        return MultiLineString(rings)

    def exterior(self) -> LineString:
        return LineString(self.shell)

    def _struct_key(self) -> tuple:
        return (self.shell, self.holes)


class MultiPolygon(Geometry):
    """A collection of polygons (dimension 2)."""

    __slots__ = ("polygons",)

    geom_type = GeometryType.MULTIPOLYGON

    def __init__(self, polygons: Sequence):
        super().__init__()
        built: List[Polygon] = []
        for poly in polygons:
            if isinstance(poly, Polygon):
                built.append(poly)
            elif isinstance(poly, (tuple, list)) and poly and isinstance(
                poly[0], (tuple, list)
            ) and poly[0] and isinstance(poly[0][0], (int, float)):
                # a bare shell: [(x, y), ...]
                built.append(Polygon(poly))
            else:
                # a (shell, holes...) sequence: [shell, hole1, hole2, ...]
                shell, *holes = poly
                built.append(Polygon(shell, holes))
        self.polygons: Tuple[Polygon, ...] = tuple(built)
        if not self.polygons:
            raise GeometryError("MultiPolygon requires at least one polygon")

    @property
    def dimension(self) -> int:
        return 2

    @property
    def is_empty(self) -> bool:
        return False

    def coords_iter(self) -> Iterator[Coord]:
        for poly in self.polygons:
            yield from poly.coords_iter()

    def rings(self) -> Iterator[Tuple[Coord, ...]]:
        for poly in self.polygons:
            yield from poly.rings()

    def segments(self) -> Iterator[Tuple[Coord, Coord]]:
        for poly in self.polygons:
            yield from poly.segments()

    def boundary(self) -> Geometry:
        rings = [LineString(r) for r in self.rings()]
        if len(rings) == 1:
            return rings[0]
        return MultiLineString(rings)

    def __len__(self) -> int:
        return len(self.polygons)

    def __iter__(self) -> Iterator[Polygon]:
        return iter(self.polygons)

    def __getitem__(self, idx: int) -> Polygon:
        return self.polygons[idx]

    def _struct_key(self) -> tuple:
        return tuple(p._struct_key() for p in self.polygons)
