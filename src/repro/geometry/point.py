"""Point and MultiPoint geometries."""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.base import Coord, Envelope, Geometry, GeometryType, clean_coords


class Point(Geometry):
    """A single 2-D location. Boundary is empty; dimension is 0."""

    __slots__ = ("x", "y")

    geom_type = GeometryType.POINT

    def __init__(self, x: float, y: float):
        super().__init__()
        ((self.x, self.y),) = clean_coords([(x, y)], "Point")

    @property
    def dimension(self) -> int:
        return 0

    @property
    def is_empty(self) -> bool:
        return False

    def coords_iter(self) -> Iterator[Coord]:
        yield (self.x, self.y)

    @property
    def coord(self) -> Coord:
        return (self.x, self.y)

    @property
    def envelope(self) -> Envelope:
        if self._envelope is None:
            self._envelope = Envelope(self.x, self.y, self.x, self.y)
        return self._envelope

    def _struct_key(self) -> tuple:
        return (self.x, self.y)


class MultiPoint(Geometry):
    """A collection of points. Dimension 0, empty boundary."""

    __slots__ = ("points",)

    geom_type = GeometryType.MULTIPOINT

    def __init__(self, points: Sequence):
        super().__init__()
        built = []
        for p in points:
            if isinstance(p, Point):
                built.append(p)
            else:
                x, y = p
                built.append(Point(x, y))
        self.points: Tuple[Point, ...] = tuple(built)
        if not self.points:
            raise GeometryError("MultiPoint requires at least one point")

    @property
    def dimension(self) -> int:
        return 0

    @property
    def is_empty(self) -> bool:
        return False

    def coords_iter(self) -> Iterator[Coord]:
        for p in self.points:
            yield p.coord

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def __getitem__(self, idx: int) -> Point:
        return self.points[idx]

    def _struct_key(self) -> tuple:
        return tuple(p.coord for p in self.points)
