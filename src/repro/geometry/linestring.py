"""LineString and MultiLineString geometries."""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.base import Coord, Geometry, GeometryType, clean_coords
from repro.geometry.point import Point


class LineString(Geometry):
    """An open or closed polyline with at least two distinct vertices.

    The boundary of a non-closed linestring is its two endpoints; a closed
    linestring (a ring) has an empty boundary — both cases matter for the
    DE-9IM micro benchmark's Touches/Crosses queries.
    """

    __slots__ = ("coords",)

    geom_type = GeometryType.LINESTRING

    def __init__(self, coords: Sequence[Coord]):
        super().__init__()
        self.coords: Tuple[Coord, ...] = clean_coords(coords, "LineString")
        if len(self.coords) < 2:
            raise GeometryError("LineString requires at least two coordinates")
        if all(c == self.coords[0] for c in self.coords[1:]):
            raise GeometryError("LineString is degenerate: all points coincide")

    @property
    def dimension(self) -> int:
        return 1

    @property
    def is_empty(self) -> bool:
        return False

    def coords_iter(self) -> Iterator[Coord]:
        return iter(self.coords)

    @property
    def is_closed(self) -> bool:
        return self.coords[0] == self.coords[-1]

    @property
    def is_ring(self) -> bool:
        """Closed and non-self-intersecting (simple)."""
        from repro.algorithms.validation import ring_is_simple

        return self.is_closed and ring_is_simple(self.coords)

    def segments(self) -> Iterator[Tuple[Coord, Coord]]:
        for a, b in zip(self.coords, self.coords[1:]):
            if a != b:  # skip repeated vertices
                yield (a, b)

    def boundary_points(self) -> Tuple[Point, ...]:
        if self.is_closed:
            return ()
        return (Point(*self.coords[0]), Point(*self.coords[-1]))

    @property
    def start(self) -> Point:
        return Point(*self.coords[0])

    @property
    def end(self) -> Point:
        return Point(*self.coords[-1])

    def interpolate(self, fraction: float) -> Point:
        """The point at ``fraction`` (0..1) of the line's length.

        Used by the geocoding macro scenario to turn an address-range match
        into a street-address location.
        """
        if not 0.0 <= fraction <= 1.0:
            raise GeometryError(f"interpolate fraction {fraction} outside [0, 1]")
        total = self.length()
        if total == 0.0:
            return Point(*self.coords[0])
        target = fraction * total
        walked = 0.0
        for (ax, ay), (bx, by) in self.segments():
            seg = math.hypot(bx - ax, by - ay)
            if walked + seg >= target:
                t = (target - walked) / seg if seg else 0.0
                return Point(ax + t * (bx - ax), ay + t * (by - ay))
            walked += seg
        return Point(*self.coords[-1])

    def project(self, point: Point) -> float:
        """Fraction (0..1) along the line of the closest point to ``point``.

        The reverse-geocoding macro scenario projects a query location onto
        the nearest road and reads the address off this fraction.
        """
        best_d2 = math.inf
        best_walked = 0.0
        walked = 0.0
        px, py = point.x, point.y
        for (ax, ay), (bx, by) in self.segments():
            dx, dy = bx - ax, by - ay
            seg2 = dx * dx + dy * dy
            t = 0.0 if seg2 == 0.0 else max(
                0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy) / seg2)
            )
            cx, cy = ax + t * dx, ay + t * dy
            d2 = (px - cx) ** 2 + (py - cy) ** 2
            seg = math.sqrt(seg2)
            if d2 < best_d2:
                best_d2 = d2
                best_walked = walked + t * seg
            walked += seg
        return best_walked / walked if walked else 0.0

    def reversed(self) -> "LineString":
        return LineString(tuple(reversed(self.coords)))

    def _struct_key(self) -> tuple:
        return self.coords


class MultiLineString(Geometry):
    """A collection of linestrings (dimension 1)."""

    __slots__ = ("lines",)

    geom_type = GeometryType.MULTILINESTRING

    def __init__(self, lines: Sequence):
        super().__init__()
        built: List[LineString] = []
        for line in lines:
            if isinstance(line, LineString):
                built.append(line)
            else:
                built.append(LineString(line))
        self.lines: Tuple[LineString, ...] = tuple(built)
        if not self.lines:
            raise GeometryError("MultiLineString requires at least one linestring")

    @property
    def dimension(self) -> int:
        return 1

    @property
    def is_empty(self) -> bool:
        return False

    def coords_iter(self) -> Iterator[Coord]:
        for line in self.lines:
            yield from line.coords

    def segments(self) -> Iterator[Tuple[Coord, Coord]]:
        for line in self.lines:
            yield from line.segments()

    def boundary_points(self) -> Tuple[Point, ...]:
        """Mod-2 rule: endpoints shared by an even number of members vanish."""
        counts: dict = {}
        for line in self.lines:
            if line.is_closed:
                continue
            for coord in (line.coords[0], line.coords[-1]):
                counts[coord] = counts.get(coord, 0) + 1
        return tuple(Point(*c) for c, n in counts.items() if n % 2 == 1)

    def __len__(self) -> int:
        return len(self.lines)

    def __iter__(self) -> Iterator[LineString]:
        return iter(self.lines)

    def __getitem__(self, idx: int) -> LineString:
        return self.lines[idx]

    def _struct_key(self) -> tuple:
        return tuple(line.coords for line in self.lines)
