"""Geometry model: OGC simple-feature types, envelopes, WKT/WKB.

Quick tour::

    from repro.geometry import Point, Polygon, wkt_loads

    square = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
    assert square.contains(Point(5, 5))
    assert wkt_loads(square.wkt()) == square
"""

from repro.geometry.base import Coord, Envelope, Geometry, GeometryType
from repro.geometry.collection import EMPTY, GeometryCollection
from repro.geometry.linestring import LineString, MultiLineString
from repro.geometry.point import MultiPoint, Point
from repro.geometry.polygon import MultiPolygon, Polygon, signed_ring_area
from repro.geometry.wkb import dumps as wkb_dumps
from repro.geometry.wkb import loads as wkb_loads
from repro.geometry.wkt import dumps as wkt_dumps
from repro.geometry.wkt import loads as wkt_loads

__all__ = [
    "Coord",
    "Envelope",
    "Geometry",
    "GeometryType",
    "GeometryCollection",
    "EMPTY",
    "LineString",
    "MultiLineString",
    "MultiPoint",
    "MultiPolygon",
    "Point",
    "Polygon",
    "signed_ring_area",
    "wkb_dumps",
    "wkb_loads",
    "wkt_dumps",
    "wkt_loads",
]
