"""Well-Known Text reader and writer.

Supports the seven OGC simple-feature types plus ``EMPTY`` markers.
The parser is a small hand-written tokenizer + recursive descent reader —
no regex backtracking, positions carried through for useful error messages.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import WktParseError
from repro.geometry.base import Coord, Geometry
from repro.geometry.collection import GeometryCollection
from repro.geometry.linestring import LineString, MultiLineString
from repro.geometry.point import MultiPoint, Point
from repro.geometry.polygon import MultiPolygon, Polygon

_WORD_CHARS = frozenset("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_NUM_CHARS = frozenset("0123456789+-.eE")


class _Scanner:
    """Tokenizer over a WKT string: words, numbers, parens, commas."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self._skip_ws()
        if self.pos >= len(self.text):
            return ""
        return self.text[self.pos]

    def expect(self, char: str) -> None:
        got = self.peek()
        if got != char:
            raise WktParseError(f"expected {char!r}, found {got!r}", self.pos)
        self.pos += 1

    def try_consume(self, char: str) -> bool:
        if self.peek() == char:
            self.pos += 1
            return True
        return False

    def word(self) -> str:
        self._skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _WORD_CHARS:
            self.pos += 1
        if self.pos == start:
            raise WktParseError("expected a keyword", start)
        return self.text[start : self.pos].upper()

    def try_word(self) -> str:
        self._skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] in _WORD_CHARS:
            return self.word()
        return ""

    def number(self) -> float:
        self._skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _NUM_CHARS:
            self.pos += 1
        if self.pos == start:
            raise WktParseError("expected a number", start)
        try:
            return float(self.text[start : self.pos])
        except ValueError:
            raise WktParseError(
                f"bad number {self.text[start:self.pos]!r}", start
            )

    def at_end(self) -> bool:
        self._skip_ws()
        return self.pos >= len(self.text)


def _read_coord(sc: _Scanner) -> Coord:
    x = sc.number()
    y = sc.number()
    # tolerate (and drop) Z / M ordinates
    while sc.peek() not in (",", ")", ""):
        sc.number()
    return (x, y)


def _read_coord_list(sc: _Scanner) -> List[Coord]:
    sc.expect("(")
    coords = [_read_coord(sc)]
    while sc.try_consume(","):
        coords.append(_read_coord(sc))
    sc.expect(")")
    return coords


def _read_ring_list(sc: _Scanner) -> List[List[Coord]]:
    sc.expect("(")
    rings = [_read_coord_list(sc)]
    while sc.try_consume(","):
        rings.append(_read_coord_list(sc))
    sc.expect(")")
    return rings


def _read_geometry(sc: _Scanner) -> Geometry:
    tag = sc.word()
    # Tolerate dimensionality suffixes written as separate words: "POINT Z".
    if tag in ("POINT", "LINESTRING", "POLYGON", "MULTIPOINT", "MULTILINESTRING",
               "MULTIPOLYGON", "GEOMETRYCOLLECTION"):
        nxt = sc.try_word()
        if nxt == "EMPTY":
            if tag == "GEOMETRYCOLLECTION":
                return GeometryCollection(())
            raise WktParseError(f"{tag} EMPTY is not representable", sc.pos)
        if nxt not in ("", "Z", "M", "ZM"):
            raise WktParseError(f"unexpected keyword {nxt!r}", sc.pos)
    else:
        raise WktParseError(f"unknown geometry type {tag!r}", sc.pos)

    if tag == "POINT":
        sc.expect("(")
        coord = _read_coord(sc)
        sc.expect(")")
        return Point(*coord)
    if tag == "LINESTRING":
        return LineString(_read_coord_list(sc))
    if tag == "POLYGON":
        rings = _read_ring_list(sc)
        return Polygon(rings[0], rings[1:])
    if tag == "MULTIPOINT":
        sc.expect("(")
        coords: List[Coord] = []
        while True:
            if sc.try_consume("("):
                coords.append(_read_coord(sc))
                sc.expect(")")
            else:
                coords.append(_read_coord(sc))
            if not sc.try_consume(","):
                break
        sc.expect(")")
        return MultiPoint(coords)
    if tag == "MULTILINESTRING":
        return MultiLineString(_read_ring_list(sc))
    if tag == "MULTIPOLYGON":
        sc.expect("(")
        polys = [_read_ring_list(sc)]
        while sc.try_consume(","):
            polys.append(_read_ring_list(sc))
        sc.expect(")")
        return MultiPolygon([Polygon(rings[0], rings[1:]) for rings in polys])
    # GEOMETRYCOLLECTION
    sc.expect("(")
    geoms = [_read_geometry(sc)]
    while sc.try_consume(","):
        geoms.append(_read_geometry(sc))
    sc.expect(")")
    return GeometryCollection(geoms)


def loads(text: str) -> Geometry:
    """Parse a WKT string into a geometry."""
    sc = _Scanner(text)
    geom = _read_geometry(sc)
    if not sc.at_end():
        raise WktParseError("trailing characters after geometry", sc.pos)
    return geom


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


def _fmt(value: float, precision: int) -> str:
    if precision >= 17:
        # shortest representation that round-trips the double exactly
        text = repr(value)
        return "0" if text == "-0.0" else text
    text = f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return text if text not in ("-0", "") else "0"


def _coords_text(coords, precision: int) -> str:
    return ", ".join(f"{_fmt(x, precision)} {_fmt(y, precision)}" for x, y in coords)


def dumps(geom: Geometry, precision: int = 12) -> str:
    """Serialise a geometry to WKT."""
    p = precision
    if isinstance(geom, Point):
        return f"POINT ({_fmt(geom.x, p)} {_fmt(geom.y, p)})"
    if isinstance(geom, LineString):
        return f"LINESTRING ({_coords_text(geom.coords, p)})"
    if isinstance(geom, Polygon):
        rings = ", ".join(f"({_coords_text(r, p)})" for r in geom.rings())
        return f"POLYGON ({rings})"
    if isinstance(geom, MultiPoint):
        inner = ", ".join(
            f"({_fmt(pt.x, p)} {_fmt(pt.y, p)})" for pt in geom.points
        )
        return f"MULTIPOINT ({inner})"
    if isinstance(geom, MultiLineString):
        inner = ", ".join(f"({_coords_text(line.coords, p)})" for line in geom.lines)
        return f"MULTILINESTRING ({inner})"
    if isinstance(geom, MultiPolygon):
        inner = ", ".join(
            "(" + ", ".join(f"({_coords_text(r, p)})" for r in poly.rings()) + ")"
            for poly in geom.polygons
        )
        return f"MULTIPOLYGON ({inner})"
    if isinstance(geom, GeometryCollection):
        if geom.is_empty:
            return "GEOMETRYCOLLECTION EMPTY"
        inner = ", ".join(dumps(g, precision) for g in geom.geoms)
        return f"GEOMETRYCOLLECTION ({inner})"
    raise TypeError(f"cannot serialise {type(geom).__name__}")
