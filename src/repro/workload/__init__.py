"""Concurrent workload driver for real throughput benchmarking.

See :mod:`repro.workload.driver` for the client harness and
:mod:`repro.workload.mixes` for the operation mixes (read-only
map-search, and the read/write mix behind J-X4).
"""

from repro.workload.driver import (
    ClientReport,
    WorkloadConfig,
    WorkloadReport,
    render_workload,
    run_client_threads,
    run_workload,
    write_workload_telemetry,
)
from repro.workload.mixes import MIXES, Operation, get_mix

__all__ = [
    "ClientReport",
    "MIXES",
    "Operation",
    "WorkloadConfig",
    "WorkloadReport",
    "get_mix",
    "render_workload",
    "run_client_threads",
    "run_workload",
    "write_workload_telemetry",
]
