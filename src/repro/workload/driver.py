"""Concurrent workload driver: N client threads over DB-API connections.

This is the throughput harness the transaction subsystem exists for.
Each client gets its own :class:`~repro.dbapi.connection.Connection`
(hence its own session/transaction) against one shared
:class:`~repro.engines.Database`, replays operations from a
:mod:`~repro.workload.mixes` mix for a fixed duration, and records
per-client latency histograms plus commit/abort/retry counts. Lost
write-write conflicts surface as
:class:`~repro.errors.SerializationError`; the driver rolls back and
retries with the same full-jitter backoff the benchmark harness uses for
every other transient error.

Two loop disciplines:

- **closed** (default): each client issues its next operation as soon as
  the previous one finishes — classic saturation throughput.
- **open**: operations arrive on a fixed schedule (``rate`` per second
  per client) regardless of completions, the way real load does; when
  the engine falls behind, latency — not throughput — absorbs it.

The engines are pure Python, so the GIL serialises CPU work: aggregate
numbers measure contention behaviour and abort dynamics, not parallel
speedup (the J-X2/J-X4 reports say so).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.stats import backoff_delay
from repro.datagen import generate
from repro.dbapi import connect
from repro.engines import Database
from repro.errors import ReproError, SerializationError
from repro.obs.ash import AshSampler
from repro.obs.metrics import Histogram
from repro.obs.telemetry import SCHEMA
from repro.obs.waits import (
    CLIENT_BACKOFF,
    CLIENT_RETRY,
    WAITS,
    WaitAttribution,
)
from repro.workload.mixes import MIXES, Operation, get_mix


@dataclass
class WorkloadConfig:
    clients: int = 4
    duration: float = 2.0          # seconds per round
    mix: str = "mixed"             # one of repro.workload.mixes.MIXES
    engine: str = "greenwood"
    mode: str = "closed"           # "closed" | "open"
    rate: float = 8.0              # open loop: arrivals/sec per client
    seed: int = 42
    scale: float = 0.25
    max_retries: int = 5           # per operation, on SerializationError
    lock_timeout: float = 0.25     # row-lock wait budget (deadlock bound)
    waits: bool = False            # record wait events + ASH samples
    ash_interval: float = 0.01     # ASH sampling period (seconds)
    ash_capacity: int = 4096       # bounded ASH history (samples kept)
    statements: bool = False       # record per-fingerprint statement stats
    storage_dir: Optional[str] = None  # attach durable storage (WAL+pages)
    checkpoint_interval: float = 0.0   # seconds between background
                                       # checkpoints (0 = none)
    #: drive a running query service at ``host:port`` instead of the
    #: embedded engine (open-loop asyncio fleet, see repro.service.loadgen)
    server: Optional[str] = None

    def validate(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.mix not in MIXES:
            raise ValueError(
                f"unknown mix {self.mix!r}; expected one of {MIXES}"
            )
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open'")
        if self.mode == "open" and self.rate <= 0:
            raise ValueError("open-loop mode needs a positive rate")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.waits:
            if self.ash_interval <= 0:
                raise ValueError("ash_interval must be positive")
            if self.ash_capacity < 1:
                raise ValueError("ash_capacity must be >= 1")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if self.checkpoint_interval and not self.storage_dir:
            raise ValueError(
                "checkpoint_interval needs storage_dir (nothing to "
                "checkpoint without durable storage)"
            )
        if self.server is not None:
            if ":" not in self.server:
                raise ValueError("server must be a host:port address")
            if self.storage_dir:
                raise ValueError(
                    "server mode drives a remote process: storage "
                    "instrumentation belongs to the serve side"
                )
            # --waits IS allowed with --server: the serve process exports
            # its wait summary through stats(), and the driver diffs it
            # around the round (Net:Recv / Net:Send / Service:QueueWait
            # show up in the attribution without shell access)


@dataclass
class ClientReport:
    """What one client thread did, with its own latency histogram."""

    client_id: int
    ops: int = 0          # operations finished (committed or given up)
    reads: int = 0
    writes: int = 0
    commits: int = 0      # committed write transactions
    aborts: int = 0       # serialization aborts (each one rolled back)
    retries: int = 0      # aborts that were retried (rest were given up)
    errors: int = 0       # non-transient ReproErrors (should stay 0)
    shed: int = 0         # server mode: requests shed by admission control
    timeouts: int = 0     # server mode: requests killed at the deadline
    cache_hits: int = 0   # server mode: responses served from the cache
    latency: Histogram = field(default_factory=lambda: Histogram(
        "workload_op_seconds", "per-operation latency for one client"
    ))


@dataclass
class WorkloadReport:
    config: WorkloadConfig
    wall_seconds: float
    clients: List[ClientReport]
    #: populated only when ``config.waits`` is set — the contention
    #: attribution over the whole round, the per-lock-key hot rows, and
    #: the ASH export (all absent from old telemetry readers' view)
    attribution: Optional[WaitAttribution] = None
    hottest_rows: List[Dict[str, Any]] = field(default_factory=list)
    ash: Optional[Dict[str, Any]] = None
    #: populated only when ``config.statements`` is set — the statement
    #: store export (fingerprint aggregates + plans + flips)
    statements: Optional[Dict[str, Any]] = None
    #: populated only when the round ran over durable storage — the
    #: storage counters (WAL records/bytes, buffer hit ratio, page I/O)
    #: plus checkpoints taken by the background checkpointer
    storage: Optional[Dict[str, Any]] = None
    checkpoints: int = 0
    #: populated only in server mode — the service's own pool/admission
    #: counters and the result-cache counters, read back after the round
    service: Optional[Dict[str, Any]] = None
    cache: Optional[Dict[str, Any]] = None
    #: populated only when the server ran with request tracing — the
    #: flight-recorder counters (total/retained/outcomes), read back
    #: after the round
    requests: Optional[Dict[str, Any]] = None

    def _total(self, name: str) -> int:
        return sum(getattr(report, name) for report in self.clients)

    @property
    def total_ops(self) -> int:
        return self._total("ops")

    @property
    def total_reads(self) -> int:
        return self._total("reads")

    @property
    def total_writes(self) -> int:
        return self._total("writes")

    @property
    def total_commits(self) -> int:
        return self._total("commits")

    @property
    def total_aborts(self) -> int:
        return self._total("aborts")

    @property
    def total_retries(self) -> int:
        return self._total("retries")

    @property
    def total_errors(self) -> int:
        return self._total("errors")

    @property
    def total_shed(self) -> int:
        return self._total("shed")

    @property
    def total_timeouts(self) -> int:
        return self._total("timeouts")

    @property
    def total_cache_hits(self) -> int:
        return self._total("cache_hits")

    @property
    def queries_per_minute(self) -> float:
        if not self.wall_seconds:
            return 0.0
        return 60.0 * self.total_ops / self.wall_seconds

    @property
    def abort_rate(self) -> float:
        """Aborted commit attempts over all commit attempts."""
        attempts = self.total_commits + self.total_aborts
        return self.total_aborts / attempts if attempts else 0.0

    def telemetry_document(self) -> Dict[str, Any]:
        """Same envelope schema as ``jackpine run --telemetry``."""
        config = self.config
        records: List[Dict[str, Any]] = []
        for report in self.clients:
            record: Dict[str, Any] = {
                "query_id": f"workload.client_{report.client_id}",
                "engine": config.engine,
                "suite": "workload",
                "supported": True,
                "ops": report.ops,
                "reads": report.reads,
                "writes": report.writes,
                "commits": report.commits,
                "aborts": report.aborts,
                "retries": report.retries,
                "errors": report.errors,
            }
            if self.service is not None:
                record["shed"] = report.shed
                record["timeouts"] = report.timeouts
                record["cache_hits"] = report.cache_hits
            if report.latency.count:
                record.update(
                    p50=report.latency.p50,
                    p95=report.latency.p95,
                    p99=report.latency.p99,
                    mean=report.latency.mean,
                    min=report.latency.min,
                    max=report.latency.max,
                )
            records.append(record)
        document: Dict[str, Any] = {
            "schema": SCHEMA,
            "engine": config.engine,
            "config": {
                "clients": config.clients,
                "duration": config.duration,
                "mix": config.mix,
                "mode": config.mode,
                "rate": config.rate,
                "seed": config.seed,
                "scale": config.scale,
                "max_retries": config.max_retries,
                "lock_timeout": config.lock_timeout,
                "storage_dir": config.storage_dir,
                "checkpoint_interval": config.checkpoint_interval,
                "server": config.server,
            },
            "wall_seconds": self.wall_seconds,
            "totals": {
                "ops": self.total_ops,
                "commits": self.total_commits,
                "aborts": self.total_aborts,
                "retries": self.total_retries,
                "errors": self.total_errors,
                "queries_per_minute": self.queries_per_minute,
                "abort_rate": self.abort_rate,
            },
            "records": records,
        }
        # additive sections: present only when the round ran with waits
        # on, so documents from older configs (and older readers) are
        # unchanged
        if self.attribution is not None:
            document["waits"] = self.attribution.as_dict()
            document["waits"]["hottest_rows"] = self.hottest_rows
        if self.ash is not None:
            document["ash"] = self.ash
        if self.statements is not None:
            document["statements"] = self.statements
        if self.storage is not None:
            document["storage"] = dict(
                self.storage, checkpoints_taken=self.checkpoints
            )
        if self.service is not None:
            document["service"] = dict(
                self.service,
                shed_total=self.total_shed,
                timeouts_total=self.total_timeouts,
            )
        if self.cache is not None:
            hits = self.cache.get("hits", 0)
            misses = self.cache.get("misses", 0)
            looked = hits + misses
            document["cache"] = dict(
                self.cache,
                hit_ratio=(hits / looked if looked else 0.0),
                client_observed_hits=self.total_cache_hits,
            )
        if self.requests is not None:
            document["requests"] = dict(self.requests)
        return document


def run_client_threads(
    database: Database,
    clients: int,
    body: Callable[[Any, ClientReport], None],
) -> "tuple[float, List[ClientReport]]":
    """Run ``body(connection, report)`` on ``clients`` threads, each with
    its own DB-API connection to the shared ``database``.

    A barrier lines every client up before the clock starts, so the wall
    time excludes connection setup. The first exception raised by any
    client is re-raised in the caller after all threads finish.
    """
    reports = [ClientReport(client_id=slot) for slot in range(clients)]
    barrier = threading.Barrier(clients + 1)
    failures: List[BaseException] = []

    def runner(slot: int) -> None:
        connection = connect(database=database)
        try:
            barrier.wait()
            body(connection, reports[slot])
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            failures.append(exc)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=runner, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if failures:
        raise failures[0]
    return wall, reports


def _run_operation(
    cursor: Any,
    connection: Any,
    op: Operation,
    report: ClientReport,
    config: WorkloadConfig,
    rng: random.Random,
) -> None:
    """Execute one operation, retrying serialization aborts with backoff."""
    start = time.perf_counter()
    try:
        if op.kind == "read":
            for sql, params in op.statements:
                cursor.execute(sql, params)
                cursor.fetchall()
            report.reads += 1
        else:
            attempt = 0
            while True:
                try:
                    cursor.execute("BEGIN")
                    for sql, params in op.statements:
                        cursor.execute(sql, params)
                    connection.commit()
                    report.commits += 1
                    break
                except SerializationError:
                    # the engine already rolled the transaction back;
                    # rollback() here just clears any session residue.
                    # Client:Retry covers only the rollback itself (the
                    # failed attempt's lock/latch waits were already
                    # recorded by their own sites), Client:Backoff the
                    # sleep — the two are disjoint, so attribution never
                    # double-counts this path.
                    if WAITS.enabled:
                        token = WAITS.begin_wait(CLIENT_RETRY)
                        try:
                            connection.rollback()
                        finally:
                            WAITS.end_wait(token)
                    else:
                        connection.rollback()
                    report.aborts += 1
                    if attempt >= config.max_retries:
                        break  # give up on this operation
                    report.retries += 1
                    database = getattr(connection, "database", None)
                    if database is not None and op.statements:
                        store = database.obs.statements
                        if store.enabled:
                            # charge the retry to the transaction's first
                            # statement: the fingerprint the flow is
                            # known by
                            store.record_retry(op.statements[0][0])
                    delay = backoff_delay(attempt, rng=rng)
                    if WAITS.enabled:
                        token = WAITS.begin_wait(CLIENT_BACKOFF)
                        try:
                            time.sleep(delay)
                        finally:
                            WAITS.end_wait(token)
                    else:
                        time.sleep(delay)
                    attempt += 1
            report.writes += 1
    except ReproError:
        connection.rollback()
        report.errors += 1
    finally:
        report.ops += 1
        report.latency.observe(time.perf_counter() - start)


class _Checkpointer:
    """Background checkpoint loop for durable workload rounds.

    Fires every ``interval`` seconds while the clients run.  A
    checkpoint that fails (an injected fault, or a simulated crash
    mid-round) is counted as a failure but never kills the round — the
    crash-recovery experiments rely on the workload continuing so the
    WAL keeps growing past the failed checkpoint.
    """

    def __init__(self, database: Database, interval: float) -> None:
        self._db = database
        self._interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.taken = 0
        self.failed = 0

    def start(self) -> None:
        if not self._interval or self._db.durability is None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="jackpine-checkpointer", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._db.checkpoint()
                self.taken += 1
            except ReproError:
                self.failed += 1

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None


def run_workload(
    config: WorkloadConfig,
    database: Optional[Database] = None,
    dataset: Any = None,
) -> WorkloadReport:
    """Run one workload round and return the aggregated report.

    Pass ``database`` to reuse a loaded datastore across rounds (the
    client-count sweeps do); otherwise the synthetic TIGER dataset is
    generated and loaded first.

    With ``config.server`` set the round is delegated to the open-loop
    asyncio fleet in :mod:`repro.service.loadgen` against a running
    ``jackpine serve`` process; ``database``/``dataset`` are ignored (the
    data lives behind the server).
    """
    config.validate()
    if config.server is not None:
        from repro.service.loadgen import run_server_workload
        return run_server_workload(config)
    if database is None:
        if dataset is None:
            dataset = generate(seed=config.seed, scale=config.scale)
        database = Database(config.engine)
        dataset.load_into(database)
    if config.storage_dir and database.durability is None:
        database.attach_storage(config.storage_dir)
    database.txn.lock_timeout = config.lock_timeout
    mix = get_mix(config.mix, database, seed=config.seed)
    interval = (
        1.0 / config.rate if config.mode == "open" and config.rate > 0
        else 0.0
    )

    def body(connection: Any, report: ClientReport) -> None:
        rng = random.Random(
            (config.seed << 16) ^ (0x9E3779B1 * (report.client_id + 1))
        )
        cursor = connection.cursor()
        deadline = time.perf_counter() + config.duration
        next_arrival = time.perf_counter()
        while True:
            now = time.perf_counter()
            if now >= deadline:
                break
            if interval:
                if now < next_arrival:
                    time.sleep(min(next_arrival - now, deadline - now))
                    if time.perf_counter() >= deadline:
                        break
                next_arrival += interval
            op = mix.next_operation(rng, report.client_id)
            _run_operation(cursor, connection, op, report, config, rng)

    attribution: Optional[WaitAttribution] = None
    hottest: List[Dict[str, Any]] = []
    ash_export: Optional[Dict[str, Any]] = None
    statements_export: Optional[Dict[str, Any]] = None
    checkpointer = _Checkpointer(database, config.checkpoint_interval)
    if config.statements:
        database.obs.statements.reset()
        database.obs.enable_statements()
    checkpointer.start()
    try:
        if config.waits:
            WAITS.enable()
            WAITS.reset()
            sampler = AshSampler(
                monitor=WAITS,
                interval=config.ash_interval,
                capacity=config.ash_capacity,
            )
            sampler.start()
            try:
                wall, reports = run_client_threads(
                    database, config.clients, body
                )
                # busy time is wall * clients: each client thread was
                # either on-CPU or in one of the wait classes for the
                # whole round
                attribution = WaitAttribution.capture(
                    WAITS, busy_seconds=wall * config.clients
                )
                hottest = WAITS.hottest_rows()
                ash_export = sampler.export()
            finally:
                sampler.stop()
                WAITS.disable()
        else:
            wall, reports = run_client_threads(
                database, config.clients, body
            )
    finally:
        checkpointer.stop()
        if config.statements:
            database.obs.disable_statements()
    if config.statements:
        statements_export = database.obs.statements.export()
    storage_export: Optional[Dict[str, Any]] = None
    if database.durability is not None:
        storage_export = database.durability.stats()
    return WorkloadReport(
        config=config,
        wall_seconds=wall,
        clients=reports,
        attribution=attribution,
        hottest_rows=hottest,
        ash=ash_export,
        statements=statements_export,
        storage=storage_export,
        checkpoints=checkpointer.taken,
    )


def render_workload(report: WorkloadReport) -> str:
    """Human-readable summary (the ``jackpine workload`` output)."""
    config = report.config
    target = (
        f"server {config.server}" if config.server is not None
        else config.engine
    )
    lines = [
        f"== workload: {config.mix} mix, {config.clients} clients, "
        f"{config.mode} loop on {target} ==",
        "(pure-Python engines: the GIL serialises CPU work, so this shows",
        " contention and abort dynamics, not parallel speedup)",
        f"wall: {report.wall_seconds:.2f}s   ops: {report.total_ops}   "
        f"agg q/min: {report.queries_per_minute:.0f}",
        f"commits: {report.total_commits}   aborts: {report.total_aborts} "
        f"(abort rate {report.abort_rate:.1%})   "
        f"retries: {report.total_retries}   errors: {report.total_errors}",
        f"{'client':>7s} {'ops':>6s} {'reads':>6s} {'writes':>7s} "
        f"{'p50':>9s} {'p95':>9s} {'p99':>9s}",
    ]
    for client in report.clients:
        hist = client.latency
        p50 = f"{hist.p50 * 1e3:8.2f}m" if hist.count else "      --"
        p95 = f"{hist.p95 * 1e3:8.2f}m" if hist.count else "      --"
        p99 = f"{hist.p99 * 1e3:8.2f}m" if hist.count else "      --"
        lines.append(
            f"{client.client_id:>7d} {client.ops:>6d} {client.reads:>6d} "
            f"{client.writes:>7d} {p50:>9s} {p95:>9s} {p99:>9s}"
        )
    if report.attribution is not None:
        lines.append("")
        lines.append(report.attribution.render(
            title=(
                "server wall-time decomposition (worker pool)"
                if config.server is not None
                else "wall-time decomposition (all clients)"
            )
        ))
    if report.ash is not None and report.ash.get("samples"):
        states = report.ash.get("wait_state_counts", {})
        top = ", ".join(
            f"{state}={count}"
            for state, count in sorted(
                states.items(), key=lambda item: -item[1]
            )[:4]
        )
        lines.append(
            f"ash: {len(report.ash['samples'])} samples over "
            f"{report.ash['sample_instants']} instants @ "
            f"{report.ash['interval'] * 1e3:.0f}ms   top states: {top}"
        )
    if report.statements is not None:
        fingerprints = report.statements.get("by_total_time", [])
        flips = report.statements.get("plan_flips_total", 0)
        lines.append(
            f"statements: {len(fingerprints)} fingerprint(s) recorded   "
            f"plan flips: {flips}"
        )
    if report.storage is not None:
        storage = report.storage
        lines.append(
            f"storage: wal {storage['wal_records']} records / "
            f"{storage['wal_bytes']} bytes, {storage['wal_syncs']} fsyncs   "
            f"buffer hit ratio {storage['buffer_hit_ratio']:.2%} "
            f"({storage['pages_read']} read, "
            f"{storage['pages_written']} written)   "
            f"checkpoints: {report.checkpoints}"
        )
    if report.service is not None:
        admission = report.service.get("admission", {})
        pool = report.service.get("pool", {})
        lines.append(
            f"service: shed {report.total_shed} "
            f"(queue_full {admission.get('shed_queue_full', 0)}, "
            f"deadline {admission.get('shed_deadline', 0)})   "
            f"timeouts: {report.total_timeouts}   "
            f"peak queue: {admission.get('peak_queue', 0)}/"
            f"{admission.get('queue_limit', 0)}   "
            f"pool: {pool.get('size', 0)} sessions, "
            f"{pool.get('created', 0)} created, "
            f"{pool.get('reaped', 0)} reaped"
        )
    if report.cache is not None:
        hits = report.cache.get("hits", 0)
        misses = report.cache.get("misses", 0)
        looked = hits + misses
        ratio = hits / looked if looked else 0.0
        lines.append(
            f"cache: {hits} hits / {misses} misses "
            f"(hit ratio {ratio:.1%})   "
            f"invalidations: {report.cache.get('invalidations', 0)}   "
            f"entries: {report.cache.get('entries', 0)}"
        )
    if report.requests is not None:
        outcomes = report.requests.get("outcomes", {})
        worst = ", ".join(
            f"{name}={count}"
            for name, count in sorted(
                outcomes.items(), key=lambda item: -item[1]
            )[:4]
        )
        lines.append(
            f"requests: {report.requests.get('total', 0)} traced, "
            f"{report.requests.get('retained', 0)} retained "
            f"(slow >= {report.requests.get('slow_threshold_ms', 0):.0f}ms, "
            f"errored, shed, or stale-adjacent)   outcomes: {worst or '--'}"
            f"   inspect: SELECT * FROM jackpine_requests / jackpine trace"
        )
    return "\n".join(lines)


def write_workload_telemetry(report: WorkloadReport, out_dir: str) -> str:
    """Write ``telemetry_<engine>.json`` (same schema family as
    ``jackpine run --telemetry``); returns the path."""
    import json
    import os

    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(
        out_dir, f"telemetry_{report.config.engine}.json"
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.telemetry_document(), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
    return path
