"""Workload mixes: the operation streams the concurrent driver replays.

A *mix* turns a per-client random stream into a sequence of
:class:`Operation` values. Two mixes ship:

- ``read_only`` — the map-search style mix behind J-X2: window counts
  and point probes over the synthetic TIGER layers, no writes, so every
  statement stays on the engine's auto-commit fast path.
- ``mixed`` — the read/write mix behind J-X4: ~80% of operations come
  from the read mix, the rest are short explicit transactions against
  ``pointlm`` (single-row hot updates, fresh inserts, and occasional
  two-row updates). Hot updates draw from a small shared pool of gids so
  clients genuinely collide and the driver's abort/retry path is
  exercised, exactly like the update contention the paper's macro
  scenarios gesture at but never measure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.datagen.tiger import WORLD_SIZE

READ_ONLY = "read_only"
MIXED = "mixed"
BROWSE = "browse"
MIXES: Tuple[str, ...] = (READ_ONLY, MIXED, BROWSE)

#: fraction of mixed-mix operations that write
WRITE_FRACTION = 0.2
#: shared hot-row pool size (small on purpose: conflicts are the point)
HOT_POOL = 8
#: gid namespace for driver inserts, far above any generated gid
INSERT_GID_BASE = 10_000_000
#: per-client slice of the insert gid namespace
INSERT_GID_STRIDE = 1_000_000


@dataclass(frozen=True)
class Operation:
    """One timed unit of work: a read statement, or a write transaction
    (the driver wraps ``statements`` in BEGIN/COMMIT when kind=write)."""

    kind: str  # "read" | "write"
    label: str
    statements: Tuple[Tuple[str, tuple], ...]


def _window(rng: random.Random, lo: float, hi: float) -> Tuple[float, ...]:
    side = rng.uniform(lo, hi) * WORLD_SIZE
    x = rng.uniform(0.0, WORLD_SIZE - side)
    y = rng.uniform(0.0, WORLD_SIZE - side)
    return (x, y, x + side, y + side)


class ReadOnlyMix:
    """Map-search reads: window counts plus county point probes."""

    name = READ_ONLY

    _WINDOW_SQL = (
        ("edges_window",
         "SELECT COUNT(*) FROM edges "
         "WHERE ST_Intersects(geom, ST_MakeEnvelope(?, ?, ?, ?))"),
        ("pointlm_window",
         "SELECT COUNT(*) FROM pointlm "
         "WHERE ST_Intersects(geom, ST_MakeEnvelope(?, ?, ?, ?))"),
        ("arealm_window",
         "SELECT COUNT(*) FROM arealm "
         "WHERE ST_Intersects(geom, ST_MakeEnvelope(?, ?, ?, ?))"),
    )
    _POINT_SQL = (
        "SELECT COUNT(*) FROM counties WHERE ST_Contains(geom, ST_Point(?, ?))"
    )

    def next_operation(self, rng: random.Random, client_id: int) -> Operation:
        roll = rng.random()
        if roll < 0.25:
            params = (
                rng.uniform(0.0, WORLD_SIZE), rng.uniform(0.0, WORLD_SIZE)
            )
            return Operation("read", "county_point",
                             ((self._POINT_SQL, params),))
        label, sql = self._WINDOW_SQL[rng.randrange(len(self._WINDOW_SQL))]
        return Operation("read", label, ((sql, _window(rng, 0.01, 0.06)),))


class MixedMix:
    """~80/20 read/write; writes are short transactions on ``pointlm``."""

    name = MIXED

    def __init__(self, hot_gids: List[int]):
        if not hot_gids:
            raise ValueError("mixed mix needs a non-empty hot gid pool")
        self.hot_gids = list(hot_gids)
        self.reads = ReadOnlyMix()
        # each client only ever touches its own slot, so no lock needed
        self._insert_counters: Dict[int, int] = {}

    def _next_insert_gid(self, client_id: int) -> int:
        count = self._insert_counters.get(client_id, 0)
        self._insert_counters[client_id] = count + 1
        return INSERT_GID_BASE + client_id * INSERT_GID_STRIDE + count

    def next_operation(self, rng: random.Random, client_id: int) -> Operation:
        if rng.random() >= WRITE_FRACTION:
            return self.reads.next_operation(rng, client_id)
        roll = rng.random()
        if roll < 0.6:
            # the read-own-write SELECT stretches the row-lock hold time
            # across a real query, which is what makes first-updater-wins
            # conflicts actually happen at benchmark speeds
            gid = rng.choice(self.hot_gids)
            return Operation("write", "hot_update", (
                ("UPDATE pointlm SET name = ? WHERE gid = ?",
                 (f"renamed-{client_id}-{gid}", gid)),
                ("SELECT name FROM pointlm WHERE gid = ?", (gid,)),
            ))
        if roll < 0.9:
            gid = self._next_insert_gid(client_id)
            x = rng.uniform(0.0, WORLD_SIZE)
            y = rng.uniform(0.0, WORLD_SIZE)
            return Operation("write", "insert", ((
                "INSERT INTO pointlm VALUES (?, ?, ?, ?, ?)",
                (gid, f"driver-{gid}", "workload", "000",
                 f"POINT({x:.1f} {y:.1f})"),
            ),))
        # two hot rows in one transaction: with unordered acquisition
        # across clients this is where lock-wait timeouts come from
        first, second = rng.sample(self.hot_gids, 2)
        return Operation("write", "double_update", (
            ("UPDATE pointlm SET name = ? WHERE gid = ?",
             (f"pair-{client_id}-a", first)),
            ("SELECT COUNT(*) FROM pointlm WHERE gid = ?", (first,)),
            ("UPDATE pointlm SET name = ? WHERE gid = ?",
             (f"pair-{client_id}-b", second)),
        ))


class BrowseMix:
    """Map-browsing reads with a popular-viewport pool.

    Real map traffic is heavily skewed: most requests hit a small set of
    popular tiles. Each operation draws from ``popular`` precomputed
    window/point queries with *identical* parameters (quadratic skew
    toward the head of the pool) or, with probability
    ``1 - repeat_fraction``, issues a fresh random viewport. The repeats
    are what give a statement-keyed result cache something to hit;
    the fresh tail keeps it honest.
    """

    name = BROWSE

    #: share of operations drawn from the popular pool
    REPEAT_FRACTION = 0.85

    def __init__(self, seed: int = 42, popular: int = 24):
        pool_rng = random.Random(seed ^ 0x5EED)
        reads = ReadOnlyMix()
        self._fresh = reads
        self._popular: List[Operation] = []
        for index in range(popular):
            if index % 4 == 3:
                params = (
                    pool_rng.uniform(0.0, WORLD_SIZE),
                    pool_rng.uniform(0.0, WORLD_SIZE),
                )
                self._popular.append(Operation(
                    "read", "popular_point", ((reads._POINT_SQL, params),)
                ))
            else:
                label, sql = reads._WINDOW_SQL[
                    index % len(reads._WINDOW_SQL)
                ]
                self._popular.append(Operation(
                    "read", f"popular_{label}",
                    ((sql, _window(pool_rng, 0.01, 0.06)),)
                ))

    def next_operation(self, rng: random.Random, client_id: int) -> Operation:
        if rng.random() < self.REPEAT_FRACTION:
            # rng.random() ** 2 skews toward index 0: the head of the
            # pool is an order of magnitude hotter than the tail
            index = int(len(self._popular) * rng.random() ** 2)
            return self._popular[index]
        return self._fresh.next_operation(rng, client_id)


def get_mix(name: str, database: Any, seed: int = 42):
    """Build a mix instance, sampling the hot-row pool from ``database``."""
    if name == READ_ONLY:
        return ReadOnlyMix()
    if name == BROWSE:
        return BrowseMix(seed=seed)
    if name == MIXED:
        rows = database.execute(
            f"SELECT gid FROM pointlm ORDER BY gid LIMIT {HOT_POOL}"
        ).rows
        return MixedMix([row[0] for row in rows])
    raise ValueError(f"unknown mix {name!r}; expected one of {MIXES}")
