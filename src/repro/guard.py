"""Execution guardrails: deadlines, cooperative cancellation, budgets.

A :class:`Guardrails` value holds the configured limits (on a
:class:`~repro.engines.database.Database`, a DB-API connection, or a
single ``execute`` call); :meth:`Guardrails.start` arms them into an
:class:`ExecutionGuard` for one statement. Operators co-operate by
calling :meth:`ExecutionGuard.tick` once per row/pair processed — the
real check (clock read, cancellation flag, budget comparison) is
amortised to every :data:`CHECK_EVERY` ticks so the guarded hot path
stays within a few percent of the unguarded one — and
:meth:`ExecutionGuard.reserve` whenever they buffer rows (nested-loop
inner sides, hash buckets, sorts, PBSM partitions), which is where the
row/byte *memory* budget is enforced.

Timeouts follow the per-query-deadline methodology Geographica added on
top of Jackpine: a runaway predicate is a *result* (recorded as
``timeout``), not a reason to abort the run.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, Optional

from repro.errors import (
    MemoryBudgetError,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.obs.waits import GUARD_TICK, WAITS

#: rows processed between two full guard checks (amortisation window)
CHECK_EVERY = 256


class CancelToken:
    """Cooperative cancellation flag, safe to set from another thread."""

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason = ""

    def cancel(self, reason: str = "") -> None:
        self.reason = reason or self.reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


class ExecutionGuard:
    """Armed limits for one executing statement."""

    __slots__ = (
        "timeout",
        "deadline",
        "max_rows",
        "max_bytes",
        "cancel",
        "rows_processed",
        "buffered_rows",
        "buffered_bytes",
        "_countdown",
    )

    def __init__(
        self,
        timeout: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
    ):
        self.timeout = timeout
        self.deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        self.max_rows = max_rows
        self.max_bytes = max_bytes
        self.cancel = cancel
        self.rows_processed = 0
        self.buffered_rows = 0
        self.buffered_bytes = 0
        # first tick checks immediately (an already-expired deadline must
        # fail fast even on tiny inputs), then every CHECK_EVERY rows
        self._countdown = 1

    def tick(self, n: int = 1) -> None:
        """Account ``n`` rows of work; runs the full check every
        :data:`CHECK_EVERY` rows."""
        self.rows_processed += n
        self._countdown -= n
        if self._countdown <= 0:
            self._countdown = CHECK_EVERY
            if WAITS.enabled:
                # the full check is already amortised to every CHECK_EVERY
                # rows, so timing it here costs nothing on the row path
                started = time.perf_counter()
                try:
                    self.check()
                finally:
                    WAITS.record(
                        GUARD_TICK, time.perf_counter() - started
                    )
            else:
                self.check()

    def check(self) -> None:
        """The unamortised check: cancellation first, then the deadline."""
        cancel = self.cancel
        if cancel is not None and cancel.cancelled:
            reason = cancel.reason or "no reason given"
            raise QueryCancelledError(
                f"query cancelled after {self.rows_processed} rows ({reason})"
            )
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise QueryTimeoutError(
                f"query exceeded its {self.timeout:.6g}s deadline "
                f"after {self.rows_processed} rows"
            )

    def reserve(self, count: int, sample: Any = None) -> None:
        """Account ``count`` rows buffered by a materialising operator.

        ``sample`` (one representative row) sizes the byte estimate;
        buffering also counts as work, so the deadline stays live inside
        blocking build phases.
        """
        self.buffered_rows += count
        if self.max_rows is not None and self.buffered_rows > self.max_rows:
            raise MemoryBudgetError(
                f"query buffered {self.buffered_rows} rows, "
                f"over its {self.max_rows}-row budget"
            )
        if self.max_bytes is not None:
            if sample is not None:
                self.buffered_bytes += count * _row_nbytes(sample)
            if self.buffered_bytes > self.max_bytes:
                raise MemoryBudgetError(
                    f"query buffered ~{self.buffered_bytes} bytes, "
                    f"over its {self.max_bytes}-byte budget"
                )
        self.tick(count)


class Guardrails:
    """Configured (not yet armed) limits; merge order is per-call >
    connection > database default."""

    __slots__ = ("timeout", "max_rows", "max_bytes")

    def __init__(
        self,
        timeout: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ):
        _validate_positive("timeout", timeout)
        _validate_positive("max_rows", max_rows)
        _validate_positive("max_bytes", max_bytes)
        self.timeout = timeout
        self.max_rows = max_rows
        self.max_bytes = max_bytes

    @property
    def enabled(self) -> bool:
        return (
            self.timeout is not None
            or self.max_rows is not None
            or self.max_bytes is not None
        )

    def merged(
        self,
        timeout: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> "Guardrails":
        """A new config with per-call overrides filled in where given."""
        return Guardrails(
            timeout=timeout if timeout is not None else self.timeout,
            max_rows=max_rows if max_rows is not None else self.max_rows,
            max_bytes=max_bytes if max_bytes is not None else self.max_bytes,
        )

    def start(
        self,
        timeout: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
    ) -> Optional[ExecutionGuard]:
        """Arm a guard for one statement, or ``None`` when every limit is
        off — operators skip all accounting on a ``None`` guard."""
        t = timeout if timeout is not None else self.timeout
        r = max_rows if max_rows is not None else self.max_rows
        b = max_bytes if max_bytes is not None else self.max_bytes
        if t is None and r is None and b is None and cancel is None:
            return None
        _validate_positive("timeout", t)
        _validate_positive("max_rows", r)
        _validate_positive("max_bytes", b)
        return ExecutionGuard(timeout=t, max_rows=r, max_bytes=b, cancel=cancel)

    def describe(self) -> Dict[str, Optional[float]]:
        return {
            "timeout": self.timeout,
            "max_rows": self.max_rows,
            "max_bytes": self.max_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{k}={v!r}" for k, v in self.describe().items() if v is not None
        )
        return f"Guardrails({parts})"


def _validate_positive(name: str, value) -> None:
    if value is not None and value < 0:
        raise ValueError(f"guardrail {name} must be >= 0, got {value!r}")


def _row_nbytes(row: Any) -> int:
    """Shallow size estimate of one executor row (alias -> stored tuple)."""
    size = sys.getsizeof(row)
    if isinstance(row, dict):
        for value in row.values():
            size += sys.getsizeof(value)
    elif isinstance(row, tuple):
        for value in row:
            size += sys.getsizeof(value)
    return size
