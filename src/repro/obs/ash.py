"""Active-session-history sampler over the wait-event monitor.

The classic ASH idea (Oracle's v$active_session_history, Postgres's
pg_stat_activity polled on a timer): a background thread snapshots every
active session — current statement, transaction id, wait state,
rows-processed progress — at a fixed interval into a bounded history.
Aggregating the samples approximates where wall time went without
per-event overhead; the exact per-event numbers come from the wait
records themselves (:class:`~repro.obs.waits.WaitAttribution`).

The sampler only sees threads that report through
:data:`~repro.obs.waits.WAITS` (statements via ``begin_statement``,
waits via ``begin_wait``), so it is useful exactly when the monitor is
enabled. ``start``/``stop`` are idempotent; the thread is a daemon and
never outlives :meth:`AshSampler.stop`.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs.waits import WAITS, WaitMonitor

__all__ = [
    "AshSample",
    "AshSampler",
    "active_samplers",
    "registered_samples",
    "render_sessions",
]

#: samplers currently running, so the ``jackpine_ash`` system view can
#: find their histories without holding a reference to any one sampler
_REGISTRY_LOCK = threading.Lock()
_ACTIVE_SAMPLERS: List["AshSampler"] = []


def active_samplers() -> List["AshSampler"]:
    """Every sampler between ``start()`` and ``stop()`` right now."""
    with _REGISTRY_LOCK:
        return list(_ACTIVE_SAMPLERS)


def registered_samples() -> List["AshSample"]:
    """All buffered samples across running samplers, oldest first per
    sampler — the row source of the ``jackpine_ash`` system view."""
    out: List[AshSample] = []
    for sampler in active_samplers():
        out.extend(sampler.samples())
    return out


class AshSample:
    """One active session observed at one sampling instant."""

    __slots__ = (
        "sampled_at", "thread_id", "session_id", "engine", "sql", "txid",
        "wait_event", "wait_seconds", "statement_seconds", "rows_processed",
    )

    def __init__(self, sampled_at: float, session: Dict[str, Any]):
        self.sampled_at = sampled_at
        self.thread_id = session["thread_id"]
        self.session_id = session["session_id"]
        self.engine = session["engine"]
        self.sql = session["sql"]
        self.txid = session["txid"]
        self.wait_event = session["wait_event"]
        self.wait_seconds = session["wait_seconds"]
        self.statement_seconds = session["statement_seconds"]
        self.rows_processed = session["rows_processed"]

    def as_dict(self) -> Dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.wait_event or "on CPU"
        return f"AshSample(thread={self.thread_id}, {state}, sql={self.sql!r})"


class AshSampler:
    """Background active-session sampler (see module docstring)."""

    #: default sampling interval in seconds
    DEFAULT_INTERVAL = 0.01

    #: default bounded history length (samples, not sampling instants)
    DEFAULT_CAPACITY = 4096

    def __init__(self, monitor: Optional[WaitMonitor] = None,
                 interval: float = DEFAULT_INTERVAL,
                 capacity: int = DEFAULT_CAPACITY):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.monitor = monitor if monitor is not None else WAITS
        self.interval = interval
        self._history: Deque[AshSample] = deque(maxlen=capacity)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.sample_instants = 0

    # -- lifecycle (idempotent) --------------------------------------------

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "AshSampler":
        with self._lock:
            if self.running:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="jackpine-ash", daemon=True
            )
            self._thread.start()
        with _REGISTRY_LOCK:
            if self not in _ACTIVE_SAMPLERS:
                _ACTIVE_SAMPLERS.append(self)
        return self

    def stop(self) -> "AshSampler":
        with self._lock:
            thread = self._thread
            if thread is None:
                return self
            self._stop.set()
            thread.join(timeout=5.0)
            self._thread = None
        with _REGISTRY_LOCK:
            if self in _ACTIVE_SAMPLERS:
                _ACTIVE_SAMPLERS.remove(self)
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def sample_once(self) -> List[AshSample]:
        """Take one sampling pass right now (also used by tests)."""
        now = time.time()
        batch = [
            AshSample(now, session)
            for session in self.monitor.active_sessions()
        ]
        self._history.extend(batch)
        self.sample_instants += 1
        return batch

    # -- views -------------------------------------------------------------

    def samples(self) -> List[AshSample]:
        return list(self._history)

    def clear(self) -> None:
        self._history.clear()
        self.sample_instants = 0

    def wait_state_counts(self) -> Dict[str, int]:
        """How many samples landed in each wait state ('on CPU' for
        none) — the ASH approximation of the time decomposition."""
        counts: Counter = Counter(
            sample.wait_event or "on CPU" for sample in self._history
        )
        return dict(counts)

    def export(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The ``ash`` telemetry section (JSON-able, newest-last)."""
        samples = self.samples()
        if limit is not None:
            samples = samples[-limit:]
        return {
            "interval": self.interval,
            "sample_instants": self.sample_instants,
            "wait_state_counts": self.wait_state_counts(),
            "samples": [sample.as_dict() for sample in samples],
        }


def render_sessions(sessions: List[Dict[str, Any]],
                    now_label: str = "") -> str:
    """One ``jackpine top`` frame: the live active-session table."""
    header = "== jackpine top"
    if now_label:
        header += f" @ {now_label}"
    header += f" — {len(sessions)} active session(s) =="
    lines = [
        header,
        f"{'thread':>14s} {'sess':>5s} {'txid':>6s} {'state':<26s} "
        f"{'in state':>9s} {'rows':>8s}  statement",
    ]
    if not sessions:
        reason = (
            "no activity" if WAITS.enabled
            else "wait monitor disabled / sampler not running"
        )
        lines.append(f"(no active sessions — {reason})")
        return "\n".join(lines)
    for session in sessions:
        state = session["wait_event"] or "on CPU"
        in_state = (
            session["wait_seconds"] if session["wait_event"]
            else session["statement_seconds"]
        )
        sql = session["sql"] or ""
        if len(sql) > 48:
            sql = sql[:45] + "..."
        txid = session["txid"] if session["txid"] is not None else "-"
        sess = (
            session["session_id"] if session["session_id"] is not None
            else "-"
        )
        lines.append(
            f"{session['thread_id']:>14d} {str(sess):>5s} {str(txid):>6s} "
            f"{state:<26s} {in_state * 1e3:>8.1f}m "
            f"{session['rows_processed']:>8d}  {sql}"
        )
    return "\n".join(lines)
