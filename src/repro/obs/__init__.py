"""Query-engine observability: trace spans, metrics, hooks, telemetry.

One :class:`Observability` object hangs off every
:class:`~repro.engines.Database` and bundles the three concerns:

- **tracing** — per-operator span trees for SELECTs
  (:meth:`enable_tracing`, :attr:`last_trace`), plus slow-query
  auto-capture via :attr:`slow_query_threshold`;
- **metrics** — a per-connection :class:`MetricsRegistry` chained to the
  process-wide :data:`~repro.obs.metrics.GLOBAL` registry
  (:meth:`enable_metrics`);
- **hooks** — ``on_query_start`` / ``on_query_end`` /
  ``on_operator_close`` callbacks.

The whole subsystem is built to cost one attribute check per statement
when nothing is enabled: :attr:`active` is a plain precomputed bool, and
the engine's fast path is byte-for-byte the untraced one.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.obs.ash import AshSampler
from repro.obs.hooks import Hooks
from repro.obs.metrics import GLOBAL, Histogram, MetricsRegistry, percentile_of
from repro.obs.span import Span
from repro.obs.trace import Trace
from repro.obs.waits import WAIT_EVENTS, WAITS, WaitAttribution, WaitMonitor

# imported after waits: statements pulls in the SQL lexer, whose package
# init transitively re-enters repro.obs for the wait monitor
from repro.obs.statements import StatementStore  # noqa: E402
from repro.obs.requests import (  # noqa: E402
    RECORDER,
    FlightRecorder,
    RequestRecord,
    chrome_trace,
)

__all__ = [
    "GLOBAL",
    "RECORDER",
    "AshSampler",
    "FlightRecorder",
    "Hooks",
    "MetricsRegistry",
    "Observability",
    "RequestRecord",
    "Span",
    "StatementStore",
    "Trace",
    "WAIT_EVENTS",
    "WAITS",
    "WaitAttribution",
    "WaitMonitor",
    "chrome_trace",
    "percentile_of",
]


class Observability:
    """Per-database observability switchboard (see module docstring)."""

    #: how many auto-captured slow-query traces to keep
    SLOW_TRACE_CAPACITY = 16

    def __init__(self, metrics_parent: Optional[MetricsRegistry] = None):
        self.metrics = MetricsRegistry(
            parent=GLOBAL if metrics_parent is None else metrics_parent
        )
        self.hooks = Hooks()
        self.last_trace: Optional[Trace] = None
        self.slow_traces: Deque[Trace] = deque(maxlen=self.SLOW_TRACE_CAPACITY)
        self._tracing = False
        self._metrics_enabled = False
        self._slow_query_threshold: Optional[float] = None
        #: per-fingerprint statement/plan aggregates (pg_stat_statements
        #: style); enabling it routes statements through the observed path
        self.statements = StatementStore()
        self.statements.on_flip = self._count_plan_flip
        #: the one flag the engine hot path reads; kept in sync by every
        #: mutator below so the disabled path never recomputes it
        self.active = False

    # -- switches ----------------------------------------------------------

    def _refresh(self) -> None:
        self.active = bool(
            self._tracing
            or self._metrics_enabled
            or self._slow_query_threshold is not None
            or self.hooks
            or self.statements.enabled
        )

    @property
    def tracing(self) -> bool:
        return self._tracing

    def enable_tracing(self) -> "Observability":
        self._tracing = True
        self._refresh()
        return self

    def disable_tracing(self) -> "Observability":
        self._tracing = False
        self._refresh()
        return self

    @property
    def metrics_enabled(self) -> bool:
        return self._metrics_enabled

    def enable_metrics(self) -> "Observability":
        self._metrics_enabled = True
        self._refresh()
        return self

    def disable_metrics(self) -> "Observability":
        self._metrics_enabled = False
        self._refresh()
        return self

    @property
    def statements_enabled(self) -> bool:
        return self.statements.enabled

    def enable_statements(self) -> "Observability":
        self.statements.enable()
        self._refresh()
        return self

    def disable_statements(self) -> "Observability":
        self.statements.disable()
        self._refresh()
        return self

    def _count_plan_flip(self) -> None:
        self.metrics.counter(
            "plan_flips_total",
            "statements whose captured plan shape changed",
        ).inc()

    @property
    def slow_query_threshold(self) -> Optional[float]:
        """Seconds; statements at or above it get their trace auto-kept."""
        return self._slow_query_threshold

    @slow_query_threshold.setter
    def slow_query_threshold(self, seconds: Optional[float]) -> None:
        self._slow_query_threshold = (
            float(seconds) if seconds is not None else None
        )
        self._refresh()

    # -- hook registration (decorator-friendly) ----------------------------

    def on_query_start(self, fn: Callable[[str, tuple], Any]):
        self.hooks.query_start.append(fn)
        self._refresh()
        return fn

    def on_query_end(self, fn: Callable[[Trace], Any]):
        self.hooks.query_end.append(fn)
        self._refresh()
        return fn

    def on_operator_close(self, fn: Callable[[Span], Any]):
        self.hooks.operator_close.append(fn)
        self._refresh()
        return fn

    def remove_query_end(self, fn: Callable[[Trace], Any]) -> None:
        """Unregister one ``query_end`` hook (no-op when absent) — the
        flight recorder detaches this way without clobbering hooks other
        subsystems registered."""
        try:
            self.hooks.query_end.remove(fn)
        except ValueError:
            pass
        self._refresh()

    def clear_hooks(self) -> None:
        self.hooks = Hooks()
        self._refresh()

    # -- recording (called by the engine) ----------------------------------

    @property
    def capture_spans(self) -> bool:
        """Whether SELECT executions should build a span tree."""
        return (
            self._tracing
            or self._slow_query_threshold is not None
            or bool(self.hooks.operator_close)
        )

    def record(self, trace: Trace) -> None:
        """File one finished statement: traces, slow log, metrics, hooks."""
        if self._tracing:
            self.last_trace = trace
        threshold = self._slow_query_threshold
        if threshold is not None and trace.seconds >= threshold:
            self.slow_traces.append(trace)
        if self._metrics_enabled:
            metrics = self.metrics
            metrics.counter(
                "queries_total", "statements executed"
            ).inc()
            metrics.counter(
                "rows_returned_total", "result rows returned"
            ).inc(trace.rows)
            metrics.histogram(
                "query_seconds", "statement latency"
            ).observe(trace.seconds)
        self.hooks.fire_query_end(trace)
