"""Wait-event instrumentation: where threads spend their time.

Modeled on Postgres's ``pg_stat_activity`` wait-event taxonomy: every
place the engine can block — row locks, the statement latch, dump I/O,
client-side retry/backoff — plus the attributed on-CPU hot paths
(refinement, index probes, sorts) and the guardrail tick, is a *wait
event* from a closed taxonomy (:data:`WAIT_EVENTS`). When the process-
wide :data:`WAITS` monitor is enabled, each site records a timed
:class:`WaitRecord` into a per-thread ring buffer (no cross-thread locks
on the record path beyond the histogram's) and bumps per-event
aggregates; when it is disabled, every site costs exactly one attribute
read and a branch — the same contract as :data:`~repro.faults.FAULTS`
and the observability switchboard, pinned by
``benchmarks/test_bench_waits_overhead.py``.

Three consumers sit on top:

- the ASH sampler (:mod:`repro.obs.ash`) snapshots each thread's
  *current* statement and wait state at a fixed interval;
- :class:`WaitAttribution` decomposes wall time into wait classes and
  on-CPU buckets with p50/p95/p99 per event (``EXPLAIN ANALYZE``,
  ``jackpine stats``, the J-X2/J-X4 reports);
- the per-lock-key "hottest rows" table names the rows contended
  workloads actually fight over.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram

__all__ = [
    "WAIT_EVENTS",
    "WAIT_CLASSES",
    "CPU_CLASS",
    "WAITS",
    "WaitMonitor",
    "WaitRecord",
    "WaitRing",
    "WaitAttribution",
    "LOCK_ROW",
    "LATCH_SHARED",
    "LATCH_EXCLUSIVE",
    "IO_DUMP_READ",
    "IO_DUMP_WRITE",
    "IO_WAL_WRITE",
    "IO_WAL_FSYNC",
    "IO_PAGE_READ",
    "IO_PAGE_WRITE",
    "CPU_REFINE",
    "CPU_INDEX_PROBE",
    "CPU_SORT",
    "CLIENT_RETRY",
    "CLIENT_BACKOFF",
    "GUARD_TICK",
    "NET_RECV",
    "NET_SEND",
    "SERVICE_QUEUE",
]

# -- the closed taxonomy ----------------------------------------------------

LOCK_ROW = "LockManager:RowLock"
LATCH_SHARED = "Latch:StatementShared"
LATCH_EXCLUSIVE = "Latch:StatementExclusive"
IO_DUMP_READ = "IO:DumpRead"
IO_DUMP_WRITE = "IO:DumpWrite"
IO_WAL_WRITE = "IO:WalWrite"
IO_WAL_FSYNC = "IO:WalFsync"
IO_PAGE_READ = "IO:PageRead"
IO_PAGE_WRITE = "IO:PageWrite"
CPU_REFINE = "CPU:Refine"
CPU_INDEX_PROBE = "CPU:IndexProbe"
CPU_SORT = "CPU:Sort"
CLIENT_RETRY = "Client:Retry"
CLIENT_BACKOFF = "Client:Backoff"
GUARD_TICK = "Guard:Tick"
NET_RECV = "Net:Recv"
NET_SEND = "Net:Send"
SERVICE_QUEUE = "Service:QueueWait"

#: every wait event compiled into the engine, event -> the site that
#: emits it. The taxonomy is *closed*: recording an unknown event raises.
WAIT_EVENTS: Dict[str, str] = {
    LOCK_ROW: "RowLockTable.acquire — blocked on a row write lock",
    LATCH_SHARED: "SharedExclusiveLock.acquire_shared — statement latch",
    LATCH_EXCLUSIVE: "SharedExclusiveLock.acquire_exclusive — statement latch",
    IO_DUMP_READ: "restore/load_database — reading a dump stream",
    IO_DUMP_WRITE: "dump/save_database — writing a dump stream",
    IO_WAL_WRITE: "WriteAheadLog.flush — writing buffered log records",
    IO_WAL_FSYNC: "WriteAheadLog.sync — fsync of the log file (group commit)",
    IO_PAGE_READ: "DiskManager.read_page — reading a heap page from disk",
    IO_PAGE_WRITE: "DiskManager.write_page — writing a dirty heap page",
    CPU_REFINE: "EngineProfile.refine_predicate — exact geometry refinement",
    CPU_INDEX_PROBE: "IndexScan / IndexNestedLoopJoin — spatial index search",
    CPU_SORT: "Sort operator — materialise + multi-key sort",
    CLIENT_RETRY: "workload driver — rolling back an aborted transaction",
    CLIENT_BACKOFF: "workload driver — jittered backoff sleep before retry",
    GUARD_TICK: "ExecutionGuard — amortised deadline/cancellation check",
    NET_RECV: "service server — reading a request frame off the socket",
    NET_SEND: "service server — draining a response frame to the socket",
    SERVICE_QUEUE: "service server — admitted request waiting for a worker",
}

#: event-name prefix identifying attributed on-CPU work (not off-CPU waits)
CPU_CLASS = "CPU"

#: every class in the taxonomy, in report order (waits first, CPU last)
WAIT_CLASSES: Tuple[str, ...] = (
    "LockManager", "Latch", "IO", "Net", "Service", "Client", "Guard",
    CPU_CLASS,
)


class WaitRecord:
    """One finished timed wait (or attributed on-CPU stretch)."""

    __slots__ = ("event", "seconds", "detail", "thread_id", "ended_at")

    def __init__(self, event: str, seconds: float, detail: Any,
                 thread_id: int, ended_at: float):
        self.event = event
        self.seconds = seconds
        self.detail = detail
        self.thread_id = thread_id
        self.ended_at = ended_at

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "event": self.event,
            "seconds": self.seconds,
            "thread_id": self.thread_id,
            "ended_at": self.ended_at,
        }
        if self.detail is not None:
            out["detail"] = (
                list(self.detail) if isinstance(self.detail, tuple)
                else self.detail
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WaitRecord({self.event}, {self.seconds * 1e3:.3f}ms, "
            f"detail={self.detail!r})"
        )


class WaitRing:
    """Fixed-capacity overwrite-oldest ring of :class:`WaitRecord`.

    Owned by exactly one thread; appends are plain index arithmetic (no
    locks). Readers from other threads (the ASH sampler, reports) get a
    best-effort snapshot — records are immutable once appended, so the
    worst race is seeing a slot mid-overwrite, never a torn record.
    """

    __slots__ = ("capacity", "_slots", "_next", "appended")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self._slots: List[Optional[WaitRecord]] = [None] * capacity
        self._next = 0
        self.appended = 0

    def append(self, record: WaitRecord) -> None:
        self._slots[self._next] = record
        self._next = (self._next + 1) % self.capacity
        self.appended += 1

    def __len__(self) -> int:
        return min(self.appended, self.capacity)

    @property
    def dropped(self) -> int:
        """Records overwritten before anyone could read them."""
        return max(0, self.appended - self.capacity)

    def snapshot(self) -> List[WaitRecord]:
        """Records oldest -> newest (at most ``capacity`` of them)."""
        if self.appended <= self.capacity:
            return [r for r in self._slots[: self._next] if r is not None]
        head = self._next
        out = self._slots[head:] + self._slots[:head]
        return [r for r in out if r is not None]


class _ThreadState:
    """Everything the monitor tracks for one thread."""

    __slots__ = (
        "thread_id", "ring", "totals",
        "current_wait", "current_wait_detail", "current_wait_since",
        "statement", "engine", "txid", "session_id", "statement_since",
        "shard",
    )

    def __init__(self, thread_id: int, ring_capacity: int):
        self.thread_id = thread_id
        self.ring = WaitRing(ring_capacity)
        #: event -> [count, total_seconds]
        self.totals: Dict[str, List[float]] = {}
        self.current_wait: Optional[str] = None
        self.current_wait_detail: Any = None
        self.current_wait_since = 0.0
        self.statement: Optional[str] = None
        self.engine: Optional[str] = None
        self.txid: Optional[int] = None
        self.session_id: Optional[int] = None
        self.statement_since = 0.0
        #: live per-statement Stats shard (rows-processed progress)
        self.shard: Any = None


class _WaitToken:
    """In-flight wait handed out by :meth:`WaitMonitor.begin_wait`."""

    __slots__ = ("event", "detail", "state", "started")

    def __init__(self, event: str, detail: Any, state: _ThreadState,
                 started: float):
        self.event = event
        self.detail = detail
        self.state = state
        self.started = started


class WaitMonitor:
    """Process-wide wait-event switchboard (see module docstring)."""

    #: per-thread ring capacity when :meth:`enable` is given none
    DEFAULT_RING_CAPACITY = 4096

    def __init__(self) -> None:
        #: the one flag every instrumented site reads on its hot path
        self.enabled = False
        self._ring_capacity = self.DEFAULT_RING_CAPACITY
        self._mutex = threading.Lock()
        self._states: Dict[int, _ThreadState] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: LockManager:RowLock detail -> [count, total_seconds]
        self._lock_keys: Dict[Any, List[float]] = {}

    # -- switches ----------------------------------------------------------

    def enable(self, ring_capacity: Optional[int] = None) -> "WaitMonitor":
        if ring_capacity is not None:
            self._ring_capacity = int(ring_capacity)
        self.enabled = True
        return self

    def disable(self) -> "WaitMonitor":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Forget every record, aggregate and thread state."""
        with self._mutex:
            self._states.clear()
            self._histograms.clear()
            self._lock_keys.clear()

    # -- per-thread state --------------------------------------------------

    def state(self) -> _ThreadState:
        tid = threading.get_ident()
        state = self._states.get(tid)
        if state is None:
            with self._mutex:
                state = self._states.get(tid)
                if state is None:
                    state = _ThreadState(tid, self._ring_capacity)
                    self._states[tid] = state
        return state

    def thread_states(self) -> List[_ThreadState]:
        with self._mutex:
            return list(self._states.values())

    # -- recording ---------------------------------------------------------

    def begin_wait(self, event: str, detail: Any = None) -> _WaitToken:
        """Mark this thread as waiting on ``event`` (visible to ASH)."""
        state = self.state()
        started = time.perf_counter()
        state.current_wait = event
        state.current_wait_detail = detail
        state.current_wait_since = started
        return _WaitToken(event, detail, state, started)

    def end_wait(self, token: _WaitToken) -> float:
        """Finish an in-flight wait; records it and returns its seconds."""
        seconds = time.perf_counter() - token.started
        state = token.state
        state.current_wait = None
        state.current_wait_detail = None
        self._record(state, token.event, seconds, token.detail)
        return seconds

    def record(self, event: str, seconds: float, detail: Any = None) -> None:
        """Record an already-measured wait on the calling thread."""
        self._record(self.state(), event, seconds, detail)

    def _record(self, state: _ThreadState, event: str, seconds: float,
                detail: Any) -> None:
        if event not in WAIT_EVENTS:
            raise KeyError(
                f"unknown wait event {event!r}; the taxonomy is closed "
                f"(see repro.obs.waits.WAIT_EVENTS)"
            )
        state.ring.append(WaitRecord(
            event, seconds, detail, state.thread_id, time.time()
        ))
        totals = state.totals.get(event)
        if totals is None:
            totals = state.totals[event] = [0, 0.0]
        totals[0] += 1
        totals[1] += seconds
        self._histogram(event).observe(seconds)
        if detail is not None and event == LOCK_ROW:
            with self._mutex:
                entry = self._lock_keys.get(detail)
                if entry is None:
                    entry = self._lock_keys[detail] = [0, 0.0]
                entry[0] += 1
                entry[1] += seconds

    def _histogram(self, event: str) -> Histogram:
        hist = self._histograms.get(event)
        if hist is None:
            with self._mutex:
                hist = self._histograms.get(event)
                if hist is None:
                    hist = self._histograms[event] = Histogram(
                        f"wait_{event}", WAIT_EVENTS[event]
                    )
        return hist

    def histogram(self, event: str) -> Histogram:
        """The per-event latency histogram (existing metrics type)."""
        return self._histogram(event)

    # -- statement tracking (feeds the ASH sampler) ------------------------

    def begin_statement(self, sql: str, engine: Optional[str] = None,
                        txid: Optional[int] = None,
                        session_id: Optional[int] = None) -> None:
        state = self.state()
        state.statement = sql
        state.engine = engine
        state.txid = txid
        state.session_id = session_id
        state.statement_since = time.perf_counter()
        state.shard = None

    def attach_shard(self, shard: Any) -> None:
        """Expose the live per-statement Stats shard as the progress
        counter (read racily by the sampler; ints never tear)."""
        self.state().shard = shard

    def set_txid(self, txid: Optional[int]) -> None:
        self.state().txid = txid

    def end_statement(self) -> None:
        state = self.state()
        state.statement = None
        state.txid = None
        state.shard = None

    def active_sessions(self) -> List[Dict[str, Any]]:
        """One snapshot row per thread with a statement in flight —
        the ``pg_stat_activity`` view the ASH sampler polls."""
        now = time.perf_counter()
        out: List[Dict[str, Any]] = []
        for state in self.thread_states():
            sql = state.statement
            wait = state.current_wait
            if sql is None and wait is None:
                continue
            shard = state.shard
            rows = shard.rows_scanned if shard is not None else 0
            out.append({
                "thread_id": state.thread_id,
                "session_id": state.session_id,
                "engine": state.engine,
                "sql": sql,
                "txid": state.txid,
                "wait_event": wait,
                "wait_seconds": (
                    now - state.current_wait_since if wait is not None
                    else 0.0
                ),
                "statement_seconds": (
                    now - state.statement_since if sql is not None else 0.0
                ),
                "rows_processed": rows,
            })
        return out

    # -- aggregate views ---------------------------------------------------

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-event totals merged across threads:
        ``{event: {count, seconds, p50, p95, p99}}``."""
        merged: Dict[str, List[float]] = {}
        for state in self.thread_states():
            for event, (count, seconds) in state.totals.items():
                entry = merged.setdefault(event, [0, 0.0])
                entry[0] += count
                entry[1] += seconds
        out: Dict[str, Dict[str, float]] = {}
        for event, (count, seconds) in sorted(merged.items()):
            hist = self._histograms.get(event)
            entry: Dict[str, float] = {
                "count": int(count), "seconds": seconds,
            }
            if hist is not None and hist.count:
                entry.update(p50=hist.p50, p95=hist.p95, p99=hist.p99)
            out[event] = entry
        return out

    def records(self) -> List[WaitRecord]:
        """Every buffered record across threads, oldest first per thread."""
        out: List[WaitRecord] = []
        for state in self.thread_states():
            out.extend(state.ring.snapshot())
        return out

    def dropped(self) -> int:
        return sum(state.ring.dropped for state in self.thread_states())

    def hottest_rows(self, limit: int = 10) -> List[Dict[str, Any]]:
        """The lock keys threads waited on most (by total wait seconds)."""
        with self._mutex:
            items = list(self._lock_keys.items())
        items.sort(key=lambda kv: kv[1][1], reverse=True)
        out = []
        for key, (count, seconds) in items[:limit]:
            table, row_id = key if isinstance(key, tuple) else (key, None)
            out.append({
                "table": table,
                "row_id": row_id,
                "waits": int(count),
                "seconds": seconds,
            })
        return out


#: the process-wide monitor every instrumented site reads
WAITS = WaitMonitor()


# -- contention attribution -------------------------------------------------


class WaitAttribution:
    """Wall-time decomposition: off-CPU wait classes + on-CPU buckets.

    ``busy_seconds`` is the total thread-time being decomposed (wall
    seconds x concurrent clients for a workload; plain wall seconds for
    one statement). Off-CPU classes subtract from it; the attributed
    ``CPU:*`` buckets and the remainder ("other on-CPU") split what is
    left, so the decomposition always sums to ``busy_seconds`` unless
    recorded waits exceed it (overlap — reported as ``overcount``).
    """

    def __init__(self, summary: Dict[str, Dict[str, float]],
                 busy_seconds: float,
                 hottest: Optional[List[Dict[str, Any]]] = None):
        self.summary = summary
        self.busy_seconds = busy_seconds
        self.hottest = hottest or []

    @classmethod
    def capture(cls, monitor: WaitMonitor, busy_seconds: float,
                hottest_limit: int = 10) -> "WaitAttribution":
        return cls(
            monitor.summary(), busy_seconds,
            monitor.hottest_rows(hottest_limit),
        )

    # -- derived figures ---------------------------------------------------

    def class_seconds(self) -> Dict[str, float]:
        """Per-class total seconds, including zero-valued classes."""
        out = {cls_name: 0.0 for cls_name in WAIT_CLASSES}
        for event, entry in self.summary.items():
            out[event.split(":", 1)[0]] += entry["seconds"]
        return out

    @property
    def off_cpu_seconds(self) -> float:
        return sum(
            seconds for cls_name, seconds in self.class_seconds().items()
            if cls_name != CPU_CLASS
        )

    @property
    def attributed_cpu_seconds(self) -> float:
        return self.class_seconds()[CPU_CLASS]

    @property
    def other_cpu_seconds(self) -> float:
        """on-CPU time not covered by an attributed CPU bucket."""
        return max(
            0.0,
            self.busy_seconds - self.off_cpu_seconds
            - self.attributed_cpu_seconds,
        )

    @property
    def overcount_seconds(self) -> float:
        """Recorded time beyond ``busy_seconds`` (overlapping records)."""
        recorded = self.off_cpu_seconds + self.attributed_cpu_seconds
        return max(0.0, recorded - self.busy_seconds)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "busy_seconds": self.busy_seconds,
            "off_cpu_seconds": self.off_cpu_seconds,
            "attributed_cpu_seconds": self.attributed_cpu_seconds,
            "other_cpu_seconds": self.other_cpu_seconds,
            "overcount_seconds": self.overcount_seconds,
            "classes": self.class_seconds(),
            "events": self.summary,
            "hottest_rows": self.hottest,
        }

    # -- rendering ---------------------------------------------------------

    def render(self, title: str = "wait-event attribution") -> str:
        busy = self.busy_seconds or 1e-12
        lines = [
            f"-- {title} (busy {self.busy_seconds:.2f}s) --",
            f"{'event':<28s} {'count':>8s} {'seconds':>9s} {'%busy':>7s} "
            f"{'p50':>9s} {'p95':>9s} {'p99':>9s}",
        ]

        def pct(seconds: float) -> str:
            return f"{100.0 * seconds / busy:6.1f}%"

        def ms(entry: Dict[str, float], key: str) -> str:
            value = entry.get(key)
            return f"{value * 1e3:8.3f}m" if value is not None else "      --"

        for event in sorted(self.summary):
            entry = self.summary[event]
            lines.append(
                f"{event:<28s} {entry['count']:>8d} "
                f"{entry['seconds']:>8.3f}s {pct(entry['seconds'])} "
                f"{ms(entry, 'p50')} {ms(entry, 'p95')} {ms(entry, 'p99')}"
            )
        lines.append(
            f"{'on-CPU (other)':<28s} {'':>8s} "
            f"{self.other_cpu_seconds:>8.3f}s {pct(self.other_cpu_seconds)}"
        )
        if self.overcount_seconds > 0.0:
            lines.append(
                f"{'(overlap overcount)':<28s} {'':>8s} "
                f"{self.overcount_seconds:>8.3f}s"
            )
        if self.hottest:
            lines.append("-- hottest rows (by lock-wait seconds) --")
            lines.append(
                f"{'table':<16s} {'row':>8s} {'waits':>7s} {'seconds':>9s}"
            )
            for row in self.hottest:
                lines.append(
                    f"{str(row['table']):<16s} {str(row['row_id']):>8s} "
                    f"{row['waits']:>7d} {row['seconds']:>8.3f}s"
                )
        return "\n".join(lines)


def summary_delta(before: Dict[str, Dict[str, float]],
                  after: Dict[str, Dict[str, float]],
                  ) -> Dict[str, Dict[str, float]]:
    """Per-event ``after - before`` (counts and seconds only — the
    histograms are cumulative, so percentile columns are omitted)."""
    out: Dict[str, Dict[str, float]] = {}
    for event, entry in after.items():
        base = before.get(event, {"count": 0, "seconds": 0.0})
        count = int(entry["count"] - base["count"])
        seconds = entry["seconds"] - base["seconds"]
        if count or seconds > 0.0:
            out[event] = {"count": count, "seconds": seconds}
    return out
