"""End-to-end request tracing for the service tier: a flight recorder.

The statement-level observability stack (spans, waits, statements)
stops at the engine boundary; since the query service went in, a slow
request's time is spent in places no statement trace can see — the
socket read, the admission queue, the session-pool wait, the cache
lookup. This module ties those together:

- a **trace context** (``trace_id`` / ``span_id`` / ``sent_at``) is
  generated client-side and propagated over the wire as the optional
  ``trace`` request field (additive — servers ignore what clients don't
  send, and old clients never send it);
- the server opens one :class:`~repro.obs.span.Span` per lifecycle
  stage (``net.recv`` / ``queue.wait`` / ``session.acquire`` /
  ``cache.lookup`` / ``execute`` / ``net.send``) and parents the
  executor's own ``SpanNode`` trace under the ``execute`` stage, so one
  request yields **one linked tree** from the client's send to the
  server's last byte;
- every completed request files a compact :class:`RequestRecord` into
  the bounded :class:`FlightRecorder` ring, and a **tail-based
  sampler** keeps the *full* span tree only for requests worth a
  post-mortem: slow, errored, shed, or cache-stale-adjacent ones.

Records are queryable through the ``jackpine_requests`` system view,
dumpable as merged client+server Chrome-trace JSON (``jackpine trace
TRACE_ID``), and optionally appended to a size-rotated slow log so they
survive process exit.

Clock-offset normalization: the client's ``sent_at`` is its own wall
clock. The server cannot know the true offset from one timestamp, but
causality bounds it — the server cannot *receive* before the client
*sent* — so a ``sent_at`` later than the server's first stage is
clamped back and the correction reported as ``clock_skew_seconds``.
Within one host (the common deployment here) both sides read the same
clock and the skew is zero.

Disabled-path discipline: when no server enables tracing, the recorder
costs the service exactly one attribute check per request, the same
contract as :data:`~repro.obs.waits.WAITS` and the observability
switchboard — pinned by ``benchmarks/test_bench_tracing_overhead.py``.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.span import Span
from repro.obs.statements import fingerprint

__all__ = [
    "RECORDER",
    "FlightRecorder",
    "PendingRequest",
    "RequestRecord",
    "SlowLog",
    "TraceContext",
    "chrome_trace",
    "new_span_id",
    "new_trace_id",
    "read_slow_log",
]

#: request outcomes that count as load shedding (the request never ran)
SHED_OUTCOMES = ("shed_queue_full", "shed_deadline", "overloaded")

# trace ids must be unique across client processes but cheap to mint on
# the per-request hot path: a random per-process prefix + a counter
_ID_PREFIX = os.urandom(6).hex()
_ID_COUNTER = itertools.count(1)


def new_trace_id() -> str:
    """A 20-hex-char id: random process prefix + sequence number."""
    return f"{_ID_PREFIX}{next(_ID_COUNTER) & 0xFFFFFFFF:08x}"


def new_span_id() -> str:
    return os.urandom(4).hex()


class TraceContext:
    """The wire-propagated half of a trace: who started it and when."""

    __slots__ = ("trace_id", "span_id", "sent_at")

    def __init__(self, trace_id: str, span_id: Optional[str] = None,
                 sent_at: Optional[float] = None):
        self.trace_id = trace_id
        #: the client's root span id (None when the server originated
        #: the trace for a context-less client)
        self.span_id = span_id
        #: client wall-clock epoch seconds at send time
        self.sent_at = sent_at

    @classmethod
    def fresh(cls) -> "TraceContext":
        return cls(new_trace_id(), new_span_id(), time.time())

    def to_wire(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.span_id is not None:
            payload["span_id"] = self.span_id
        if self.sent_at is not None:
            payload["sent_at"] = self.sent_at
        return payload

    @classmethod
    def from_wire(cls, payload: Any) -> Optional["TraceContext"]:
        """Parse the optional ``trace`` request field; ``None`` when the
        field is absent or malformed (a bad context must never fail the
        request — compatibility rule for old clients and foreign ones).
        """
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        span_id = payload.get("span_id")
        sent_at = payload.get("sent_at")
        return cls(
            trace_id[:64],
            span_id if isinstance(span_id, str) else None,
            float(sent_at) if isinstance(sent_at, (int, float)) else None,
        )


class PendingRequest:
    """One in-flight request's accumulating measurements.

    Stage timings arrive as ``(name, perf_start, seconds, detail)``
    tuples; the executor's statement traces are appended by the
    recorder's ``query_end`` hook while the worker thread is bound to
    this request. Also duck-types the ``stages`` sink the
    :class:`~repro.service.cache.CachedExecutor` reports into.
    """

    __slots__ = (
        "ctx", "sql", "started_at", "start", "stages", "traces",
        "outcome", "cached", "cache_status",
    )

    def __init__(self, ctx: TraceContext, sql: str):
        self.ctx = ctx
        self.sql = sql
        self.started_at = time.time()
        self.start = time.perf_counter()
        self.stages: List[Tuple[str, float, float, str]] = []
        self.traces: List[Any] = []
        self.outcome = "unknown"
        self.cached = False
        #: "hit" / "miss" / "stale" / "bypass" / None (never looked)
        self.cache_status: Optional[str] = None

    @property
    def trace_id(self) -> str:
        return self.ctx.trace_id

    def stage(self, name: str, perf_start: float, seconds: float,
              detail: str = "") -> None:
        self.stages.append((name, perf_start, seconds, detail))

    def complete(self, outcome: str, cached: bool = False) -> None:
        self.outcome = outcome
        self.cached = cached


class RequestRecord:
    """One completed request, compact by default; ``root`` carries the
    full linked span tree only when the tail sampler retained it."""

    __slots__ = (
        "trace_id", "client_span_id", "started_at", "sent_at", "sql",
        "fingerprint", "outcome", "cached", "cache_status",
        "stage_seconds", "total_seconds", "clock_skew_seconds",
        "retained", "root",
    )

    def __init__(self, trace_id: str, client_span_id: Optional[str],
                 started_at: float, sent_at: Optional[float], sql: str,
                 sql_fingerprint: str, outcome: str, cached: bool,
                 cache_status: Optional[str],
                 stage_seconds: Dict[str, float], total_seconds: float,
                 clock_skew_seconds: float, retained: bool,
                 root: Optional[Span]):
        self.trace_id = trace_id
        self.client_span_id = client_span_id
        self.started_at = started_at
        self.sent_at = sent_at
        self.sql = sql
        self.fingerprint = sql_fingerprint
        self.outcome = outcome
        self.cached = cached
        self.cache_status = cache_status
        #: per-stage seconds, e.g. ``{"queue.wait": 0.004, ...}``
        self.stage_seconds = stage_seconds
        self.total_seconds = total_seconds
        self.clock_skew_seconds = clock_skew_seconds
        self.retained = retained
        self.root = root

    @property
    def shed(self) -> bool:
        return self.outcome in SHED_OUTCOMES

    def span_count(self) -> int:
        return self.root.total_spans() if self.root is not None else 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "client_span_id": self.client_span_id,
            "started_at": self.started_at,
            "sent_at": self.sent_at,
            "sql": self.sql,
            "fingerprint": self.fingerprint,
            "outcome": self.outcome,
            "shed": self.shed,
            "cached": self.cached,
            "cache_status": self.cache_status,
            "stage_seconds": dict(self.stage_seconds),
            "total_seconds": self.total_seconds,
            "clock_skew_seconds": self.clock_skew_seconds,
            "retained": self.retained,
            "root": self.root.to_dict() if self.root is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RequestRecord":
        root = data.get("root")
        return cls(
            trace_id=data["trace_id"],
            client_span_id=data.get("client_span_id"),
            started_at=data.get("started_at", 0.0),
            sent_at=data.get("sent_at"),
            sql=data.get("sql", ""),
            sql_fingerprint=data.get("fingerprint", ""),
            outcome=data.get("outcome", "unknown"),
            cached=bool(data.get("cached")),
            cache_status=data.get("cache_status"),
            stage_seconds=dict(data.get("stage_seconds", ())),
            total_seconds=data.get("total_seconds", 0.0),
            clock_skew_seconds=data.get("clock_skew_seconds", 0.0),
            retained=bool(data.get("retained")),
            root=Span.from_dict(root) if root is not None else None,
        )

    def brief(self) -> Dict[str, Any]:
        """The compact listing row (``jackpine trace`` with no id)."""
        return {
            "trace_id": self.trace_id,
            "started_at": self.started_at,
            "outcome": self.outcome,
            "cached": self.cached,
            "total_ms": round(self.total_seconds * 1e3, 3),
            "retained": self.retained,
            "sql": self.sql[:120],
        }


class SlowLog:
    """Append-only JSON-lines log of tail-sampled requests with
    size-based rotation: when the file would exceed ``max_bytes`` the
    current file is renamed to ``<path>.1`` (replacing any previous
    rollover) and a fresh file is started — post-mortems survive the
    process, disk usage stays bounded at ~2x ``max_bytes``."""

    def __init__(self, path: str, max_bytes: int = 4 * 1024 * 1024):
        if max_bytes < 1024:
            raise ValueError("slow-log max_bytes must be >= 1024")
        self.path = path
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            if self._handle is None:
                return
            if self._handle.tell() + len(line) > self.max_bytes \
                    and self._handle.tell() > 0:
                self._handle.close()
                os.replace(self.path, self.path + ".1")
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def read_slow_log(path: str) -> List[RequestRecord]:
    """Records from a slow log (rollover file first, oldest-first)."""
    out: List[RequestRecord] = []
    for candidate in (path + ".1", path):
        if not os.path.exists(candidate):
            continue
        with open(candidate, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    out.append(RequestRecord.from_dict(json.loads(line)))
    return out


class FlightRecorder:
    """Bounded ring of request records with a tail-based sampler.

    The ring keeps the last ``capacity`` compact records regardless of
    interest; the *full* span tree is attached (and the slow log
    written) only when a request is slow (``>= slow_threshold``),
    errored, shed, or hit a cache-stale-adjacent lookup — the head-
    sampling alternative would keep a fixed fraction of boring requests
    and miss exactly the traces a post-mortem needs.
    """

    DEFAULT_CAPACITY = 2048

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 slow_threshold: float = 0.1):
        #: the one flag the service checks per request
        self.enabled = False
        self.capacity = capacity
        #: seconds at or above which a request's full trace is retained
        self.slow_threshold = slow_threshold
        self.slow_log: Optional[SlowLog] = None
        self._lock = threading.Lock()
        self._records: Deque[RequestRecord] = deque(maxlen=capacity)
        self._local = threading.local()
        self.requests_total = 0
        self.retained_total = 0
        self._outcomes: Dict[str, int] = {}
        self._hooked_obs: List[Any] = []

    # -- switches ----------------------------------------------------------

    def configure(self, slow_threshold: Optional[float] = None,
                  capacity: Optional[int] = None,
                  slow_log: Optional[SlowLog] = None) -> "FlightRecorder":
        with self._lock:
            if slow_threshold is not None:
                self.slow_threshold = float(slow_threshold)
            if capacity is not None and capacity != self.capacity:
                self.capacity = int(capacity)
                self._records = deque(self._records, maxlen=self.capacity)
            if slow_log is not None:
                if self.slow_log is not None:
                    self.slow_log.close()
                self.slow_log = slow_log
        return self

    def enable(self) -> "FlightRecorder":
        self.enabled = True
        return self

    def disable(self) -> "FlightRecorder":
        self.enabled = False
        return self

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self.requests_total = 0
            self.retained_total = 0
            self._outcomes = {}

    def close_log(self) -> None:
        with self._lock:
            if self.slow_log is not None:
                self.slow_log.close()
                self.slow_log = None

    # -- engine linkage ----------------------------------------------------

    def install(self, database: Any) -> None:
        """Attach to one database: enable span-capturing tracing and
        register the ``query_end`` hook that routes each executor trace
        to the request whose worker thread ran it."""
        obs = database.obs
        if obs in self._hooked_obs:
            return
        obs.on_query_end(self._on_query_end)
        obs.enable_tracing()
        self._hooked_obs.append(obs)

    def uninstall(self, database: Any) -> None:
        obs = database.obs
        if obs not in self._hooked_obs:
            return
        self._hooked_obs.remove(obs)
        obs.remove_query_end(self._on_query_end)
        obs.disable_tracing()

    def _on_query_end(self, trace: Any) -> None:
        # thread-keyed correlation: the worker thread that executes a
        # request's statement is bound to its PendingRequest for exactly
        # the duration of CachedExecutor.execute, so a shared database
        # serving concurrent workers never cross-files a trace
        pending = getattr(self._local, "pending", None)
        if pending is not None:
            pending.traces.append(trace)

    def bind(self, pending: PendingRequest) -> None:
        self._local.pending = pending

    def unbind(self) -> None:
        self._local.pending = None

    # -- request lifecycle -------------------------------------------------

    def begin(self, ctx: Optional[TraceContext], sql: str) -> PendingRequest:
        """Open a request; a server-originated context is minted when
        the client sent none (old clients still get traced)."""
        if ctx is None:
            ctx = TraceContext(new_trace_id())
        return PendingRequest(ctx, sql)

    def finish(self, pending: PendingRequest,
               send_seconds: float = 0.0) -> RequestRecord:
        """File one completed request: tail-sample, ring-append, and
        slow-log the retained ones."""
        now = time.perf_counter()
        if send_seconds > 0.0:
            pending.stage("net.send", now - send_seconds, send_seconds)
        first = min(
            [pending.start] + [start for _n, start, _s, _d in pending.stages]
        )
        total = now - first
        outcome = pending.outcome
        retained = (
            outcome != "ok"
            or total >= self.slow_threshold
            or pending.cache_status == "stale"
        )
        started_epoch = pending.started_at + (first - pending.start)
        sent_at = pending.ctx.sent_at
        skew = (
            max(0.0, sent_at - started_epoch) if sent_at is not None else 0.0
        )
        root = self._build_tree(pending, total, skew) if retained else None
        record = RequestRecord(
            trace_id=pending.ctx.trace_id,
            client_span_id=pending.ctx.span_id,
            started_at=started_epoch,
            sent_at=sent_at,
            sql=pending.sql,
            sql_fingerprint=fingerprint(pending.sql),
            outcome=outcome,
            cached=pending.cached,
            cache_status=pending.cache_status,
            stage_seconds={
                name: seconds for name, _start, seconds, _d in pending.stages
            },
            total_seconds=total,
            clock_skew_seconds=skew,
            retained=retained,
            root=root,
        )
        with self._lock:
            self._records.append(record)
            self.requests_total += 1
            if retained:
                self.retained_total += 1
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1
            slow_log = self.slow_log
        if retained and slow_log is not None:
            slow_log.write(record.as_dict())
        return record

    def _build_tree(self, pending: PendingRequest, total: float,
                    skew: float) -> Span:
        """The linked span tree, all ``started`` values in epoch seconds:
        client span -> service.request -> lifecycle stages, with the
        executor's statement trace parented under ``execute``."""

        def to_epoch(perf_value: float) -> float:
            return pending.started_at + (perf_value - pending.start)

        request = Span("service.request", detail=pending.sql[:120])
        traces = list(pending.traces)
        for name, start, seconds, detail in sorted(
            pending.stages, key=lambda item: item[1]
        ):
            stage = Span(name, detail=detail or name)
            stage.started = to_epoch(start)
            stage.seconds = seconds
            if name == "execute":
                for trace in traces:
                    stage.children.append(self._statement_span(
                        trace, to_epoch
                    ))
                traces = []
            request.children.append(stage)
        for trace in traces:  # an execute stage never closed (errors)
            request.children.append(self._statement_span(trace, to_epoch))
        request.started = min(
            [child.started for child in request.children
             if child.started is not None] or [to_epoch(pending.start)]
        )
        request.seconds = total
        sent_at = pending.ctx.sent_at
        if sent_at is None:
            return request
        # causality clamp: the server cannot have started before the
        # client sent; a later sent_at is clock skew, normalized out
        client = Span(
            "client.request",
            detail=f"span {pending.ctx.span_id or '?'}",
            children=[request],
        )
        client.started = min(sent_at - skew, request.started)
        client.seconds = (request.started + request.seconds) - client.started
        return client

    @staticmethod
    def _statement_span(trace: Any, to_epoch) -> Span:
        """One executor statement as a span subtree on the epoch
        timeline (operator ``started`` values are perf-counter based)."""
        if trace.root is not None:
            root = Span.from_dict(trace.root.to_dict())
            for _depth, span in root.walk():
                if span.started is not None:
                    span.started = to_epoch(span.started)
        else:
            root = Span("statement", detail=trace.sql[:120])
        if root.started is None:
            root.started = trace.started_at
        if root.seconds == 0.0:
            root.seconds = trace.seconds
        root.rows = root.rows or trace.rows
        return root

    # -- reading back ------------------------------------------------------

    def records(self) -> List[RequestRecord]:
        with self._lock:
            return list(self._records)

    def lookup(self, trace_id: str) -> Optional[RequestRecord]:
        with self._lock:
            for record in reversed(self._records):
                if record.trace_id == trace_id:
                    return record
        return None

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "buffered": len(self._records),
                "total": self.requests_total,
                "retained": self.retained_total,
                "dropped": max(0, self.requests_total - self.capacity),
                "slow_threshold_ms": self.slow_threshold * 1e3,
                "outcomes": dict(self._outcomes),
            }


def chrome_trace(record: Any) -> Dict[str, Any]:
    """The merged Chrome-trace (``chrome://tracing`` / Perfetto) JSON for
    one retained request: the client span on its own track (pid 1), the
    server lifecycle + executor spans on another (pid 2), timestamps
    normalized to the trace origin with the clock-skew clamp already
    applied to the stored tree."""
    if isinstance(record, dict):
        record = RequestRecord.from_dict(record)
    if record.root is None:
        raise ValueError(
            f"trace {record.trace_id} was not retained by the tail "
            f"sampler (no span tree to render)"
        )
    origin = record.root.started or record.started_at
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "client"}},
        {"name": "process_name", "ph": "M", "pid": 2,
         "args": {"name": "server"}},
    ]
    for _depth, span in record.root.walk():
        start = span.started if span.started is not None else origin
        events.append({
            "name": span.op,
            "cat": "request",
            "ph": "X",
            "ts": round(max(0.0, start - origin) * 1e6, 3),
            "dur": round(span.seconds * 1e6, 3),
            "pid": 1 if span.op.startswith("client.") else 2,
            "tid": 1,
            "args": {
                "detail": span.detail,
                "rows": span.rows,
                "counters": dict(span.counters),
            },
        })
    return {
        "traceEvents": events,
        "otherData": {
            "trace_id": record.trace_id,
            "sql": record.sql,
            "outcome": record.outcome,
            "cached": record.cached,
            "cache_status": record.cache_status,
            "total_seconds": record.total_seconds,
            "clock_skew_seconds": record.clock_skew_seconds,
            "stage_seconds": dict(record.stage_seconds),
        },
    }


#: the process-wide recorder (the ``jackpine_requests`` view reads it)
RECORDER = FlightRecorder()
