"""Metrics registry: counters, gauges and fixed-bucket latency histograms.

Registries nest: a per-connection (per-:class:`~repro.engines.Database`)
registry forwards every observation to its parent, so the module-level
:data:`GLOBAL` registry aggregates across all engines in the process
while each connection keeps its own scoped view. Everything renders to
Prometheus-style text exposition via :meth:`MetricsRegistry.render`;
engine :class:`~repro.sql.executor.Stats` objects can be *bound* to a
registry so their counters appear in the exposition without any hot-path
cost (they are read live at render time).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: one process-wide lock for metric mutation and get-or-create: metrics
#: are updated from every workload client thread, and a plain ``+=`` on
#: an int attribute is not atomic. Reentrant because updates cascade to
#: parent registries under the same lock.
_LOCK = threading.RLock()

#: default latency buckets in seconds (10us .. 10s, roughly log-spaced)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "help", "value", "_parent")

    def __init__(self, name: str, help: str = "",
                 parent: Optional["Counter"] = None):
        self.name = name
        self.help = help
        self.value = 0
        self._parent = parent

    def inc(self, amount: int = 1) -> None:
        with _LOCK:
            self.value += amount
            if self._parent is not None:
                self._parent.inc(amount)


class Gauge:
    """A value that can go up and down (last write wins per scope)."""

    __slots__ = ("name", "help", "value", "_parent")

    def __init__(self, name: str, help: str = "",
                 parent: Optional["Gauge"] = None):
        self.name = name
        self.help = help
        self.value = 0.0
        self._parent = parent

    def set(self, value: float) -> None:
        with _LOCK:
            self.value = float(value)
            if self._parent is not None:
                self._parent.set(value)

    def inc(self, amount: float = 1.0) -> None:
        with _LOCK:
            self.value += amount
            if self._parent is not None:
                self._parent.inc(amount)


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    Buckets are cumulative-upper-bound style (Prometheus ``le``); the
    estimator interpolates linearly inside the bucket containing the
    requested quantile, clamped to the observed min/max.
    """

    __slots__ = ("name", "help", "buckets", "counts", "count", "sum",
                 "min", "max", "_parent")

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None,
                 parent: Optional["Histogram"] = None):
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(buckets or DEFAULT_BUCKETS)
        # one slot per bucket plus the +Inf overflow slot
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._parent = parent

    def observe(self, value: float) -> None:
        with _LOCK:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    break
            else:
                self.counts[-1] += 1
            if self._parent is not None:
                self._parent.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def percentile(self, p: float) -> float:
        """Estimated value at percentile ``p`` (0..100)."""
        if self.count == 0:
            return math.nan
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
        target = p / 100.0 * self.count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            in_bucket = self.counts[i]
            if cumulative + in_bucket >= target and in_bucket:
                fraction = (target - cumulative) / in_bucket
                estimate = lower + (bound - lower) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += in_bucket
            lower = bound
        return self.max  # overflow bucket

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)


class MetricsRegistry:
    """Named metrics for one scope, optionally chained to a parent."""

    def __init__(self, namespace: str = "jackpine",
                 parent: Optional["MetricsRegistry"] = None):
        self.namespace = namespace
        self.parent = parent
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: (label, Stats-like) pairs read live at render time
        self._bound_stats: List[Tuple[str, object]] = []

    # -- metric constructors (created on demand, cached by name) -----------

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with _LOCK:
                metric = self._counters.get(name)
                if metric is None:
                    parent = (
                        self.parent.counter(name, help)
                        if self.parent else None
                    )
                    metric = Counter(name, help, parent=parent)
                    self._counters[name] = metric
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with _LOCK:
                metric = self._gauges.get(name)
                if metric is None:
                    parent = (
                        self.parent.gauge(name, help) if self.parent else None
                    )
                    metric = Gauge(name, help, parent=parent)
                    self._gauges[name] = metric
        return metric

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with _LOCK:
                metric = self._histograms.get(name)
                if metric is None:
                    parent = (
                        self.parent.histogram(name, help, buckets)
                        if self.parent else None
                    )
                    metric = Histogram(
                        name, help, buckets=buckets, parent=parent
                    )
                    self._histograms[name] = metric
        return metric

    # -- engine counter bridge ---------------------------------------------

    def bind_stats(self, label: str, stats: object) -> None:
        """Expose a live ``Stats``-like object (has ``snapshot()``) in the
        exposition under ``<namespace>_engine_<counter>{scope="label"}``."""
        self._bound_stats.append((label, stats))

    # -- views --------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """All metric values as one plain dict (for tests and telemetry)."""
        out: Dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, hist in self._histograms.items():
            out[name] = {
                "count": hist.count,
                "sum": hist.sum,
                "mean": hist.mean,
                "p50": hist.p50,
                "p95": hist.p95,
                "p99": hist.p99,
            }
        for label, stats in self._bound_stats:
            for key, value in stats.snapshot().items():
                out[f"engine_{key}[{label}]"] = value
        return out

    def render(self) -> str:
        """Prometheus-style text exposition of every metric in scope."""
        ns = self.namespace
        lines: List[str] = []

        def header(name: str, kind: str, help: str) -> None:
            if help:
                lines.append(f"# HELP {ns}_{name} {help}")
            lines.append(f"# TYPE {ns}_{name} {kind}")

        for name in sorted(self._counters):
            counter = self._counters[name]
            header(name, "counter", counter.help)
            lines.append(f"{ns}_{name} {counter.value}")
        for name in sorted(self._gauges):
            gauge = self._gauges[name]
            header(name, "gauge", gauge.help)
            lines.append(f"{ns}_{name} {_fmt(gauge.value)}")
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            header(name, "histogram", hist.help)
            cumulative = 0
            for bound, in_bucket in zip(hist.buckets, hist.counts):
                cumulative += in_bucket
                lines.append(
                    f'{ns}_{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(
                f'{ns}_{name}_bucket{{le="+Inf"}} {hist.count}'
            )
            lines.append(f"{ns}_{name}_sum {_fmt(hist.sum)}")
            lines.append(f"{ns}_{name}_count {hist.count}")
            if hist.count:
                for q, value in (("0.5", hist.p50), ("0.95", hist.p95),
                                 ("0.99", hist.p99)):
                    lines.append(
                        f'{ns}_{name}{{quantile="{q}"}} {_fmt(value)}'
                    )
        for label, stats in self._bound_stats:
            for key, value in sorted(stats.snapshot().items()):
                lines.append(
                    f'{ns}_engine_{key}{{scope="{label}"}} {value}'
                )
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Forget every metric and stats binding in this scope."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._bound_stats.clear()


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: process-wide aggregate; per-connection registries parent to this
GLOBAL = MetricsRegistry()


def percentile_of(samples: Iterable[float], p: float) -> float:
    """Exact linear-interpolation percentile of raw samples (0..100)."""
    ordered = sorted(samples)
    if not ordered:
        return math.nan
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p!r}")
    if len(ordered) == 1:
        return ordered[0]
    rank = p / 100.0 * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight
