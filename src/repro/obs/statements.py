"""Per-statement aggregate statistics and plan-flip detection.

The ``pg_stat_statements`` idea: every executed statement is normalised
into a stable *fingerprint* — literals become ``?``, IN-lists collapse
to a single placeholder, keywords and identifiers are case-folded — and
all executions sharing a fingerprint aggregate into one entry: calls,
latency percentiles, rows, engine-counter deltas, retries/aborts/
timeouts, and per-wait-class seconds. Alongside each statement entry the
store keeps the *plan fingerprint* of every plan shape the statement has
executed with (join strategy, index choice, operator tree); when a new
execution arrives with a different shape than the current one, a
**plan-flip event** is recorded with the before/after shapes and the
``plan_flips_total`` counter bumps — the hook future executor changes
are judged against.

The store follows the engine's one-bool discipline: :attr:`StatementStore.
enabled` is the only thing the hot path reads, and the store is only
consulted from :meth:`Database._execute_observed` (enabling statements
flips ``obs.active``), so the plain execution path never sees it.

Everything here is surfaced three ways: the ``jackpine_statements`` /
``jackpine_plans`` system views (:mod:`repro.engines.sysviews`),
``jackpine stats --statements``, and the additive ``statements`` section
of the ``jackpine-telemetry/1`` document.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram
from repro.sql.lexer import TokenType, tokenize

__all__ = [
    "StatementStore",
    "StatementEntry",
    "PlanEntry",
    "fingerprint",
    "normalize",
    "plan_shape",
    "plan_fingerprint",
]


# -- statement fingerprinting ------------------------------------------------


def normalize(sql: str) -> str:
    """The canonical text behind a fingerprint.

    Tokenises ``sql`` (the lexer already case-folds identifiers and
    keywords), replaces every literal and parameter marker with ``?``,
    and collapses IN-lists of any length to ``in (?)`` — so
    ``WHERE id IN (1, 2, 3)`` and ``where id in (9)`` normalise
    identically. String literals are re-quoted before replacement so a
    string containing SQL can never smuggle structure in.
    """
    tokens = tokenize(sql)
    parts: List[str] = []
    for token in tokens:
        if token.type is TokenType.END:
            break
        if token.type in (TokenType.NUMBER, TokenType.STRING,
                          TokenType.PARAM):
            parts.append("?")
        else:
            parts.append(token.value)
    # collapse "in ( ? , ? , ... )" runs to "in ( ? )"
    out: List[str] = []
    i = 0
    n = len(parts)
    while i < n:
        part = parts[i]
        if part == "in" and i + 2 < n and parts[i + 1] == "(":
            j = i + 2
            placeholders = 0
            while j < n and parts[j] in ("?", ","):
                if parts[j] == "?":
                    placeholders += 1
                j += 1
            if placeholders >= 1 and j < n and parts[j] == ")":
                out.extend(("in", "(", "?", ")"))
                i = j + 1
                continue
        out.append(part)
        i += 1
    return " ".join(out)


def fingerprint(sql: str) -> str:
    """Stable hex fingerprint of one statement's normalised text."""
    return hashlib.sha256(normalize(sql).encode("utf-8")).hexdigest()[:12]


# -- plan fingerprinting -----------------------------------------------------


def _node_shape(node: Any) -> str:
    """One operator's canonical shape: class name + the tables/indexes it
    touches, recursively over its children. Costs, row estimates and
    literal-bearing labels are deliberately omitted, so the shape only
    changes when the *strategy* does (operator, join order, index
    choice) — exactly what a plan flip should mean."""
    name = type(node).__name__
    if name == "SpanNode":
        return _node_shape(node.inner)
    detail: List[str] = []
    for attr in ("table", "outer_table", "inner_table"):
        obj = getattr(node, attr, None)
        if obj is not None and hasattr(obj, "name"):
            detail.append(obj.name)
    for attr in ("entry", "outer_entry", "inner_entry"):
        obj = getattr(node, attr, None)
        if obj is not None and hasattr(obj, "name"):
            detail.append(obj.name)
    shape = name
    if detail:
        shape += "(" + ",".join(detail) + ")"
    children = [_node_shape(child) for child in node.children()]
    if children:
        shape += "[" + ",".join(children) + "]"
    return shape


def plan_shape(plan: Any) -> str:
    """Canonical text form of a plan tree (see :func:`_node_shape`)."""
    return _node_shape(plan)


def plan_fingerprint(shape: str) -> str:
    """Stable hex fingerprint of one canonical plan shape."""
    return hashlib.sha256(shape.encode("utf-8")).hexdigest()[:12]


# -- per-fingerprint aggregates ----------------------------------------------

#: engine-counter deltas folded into each statement entry
_COUNTER_FIELDS = (
    "rows_scanned",
    "index_probes",
    "pages_read",
    "join_pairs_considered",
    "join_pairs_emitted",
    "degraded_results",
)

#: wait classes aggregated per statement (matches WAIT_CLASSES order)
_WAIT_CLASS_FIELDS = (
    "LockManager", "Latch", "IO", "Net", "Service", "Client", "Guard", "CPU",
)


class StatementEntry:
    """Aggregate statistics for one statement fingerprint."""

    __slots__ = (
        "fingerprint", "statement", "calls", "errors", "total_seconds",
        "histogram", "rows_returned", "retries", "aborts", "timeouts",
        "counters", "wait_class_seconds", "first_seen", "last_seen",
    )

    def __init__(self, fp: str, statement: str):
        self.fingerprint = fp
        self.statement = statement
        self.calls = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.histogram = Histogram(f"stmt_{fp}", "per-statement latency")
        self.rows_returned = 0
        self.retries = 0
        self.aborts = 0
        self.timeouts = 0
        self.counters: Dict[str, int] = {f: 0 for f in _COUNTER_FIELDS}
        self.wait_class_seconds: Dict[str, float] = {
            cls: 0.0 for cls in _WAIT_CLASS_FIELDS
        }
        self.first_seen = time.time()
        self.last_seen = self.first_seen

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    def as_dict(self) -> Dict[str, Any]:
        hist = self.histogram
        out: Dict[str, Any] = {
            "fingerprint": self.fingerprint,
            "statement": self.statement,
            "calls": self.calls,
            "errors": self.errors,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "rows_returned": self.rows_returned,
            "retries": self.retries,
            "aborts": self.aborts,
            "timeouts": self.timeouts,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
        }
        if hist.count:
            out.update(p50=hist.p50, p95=hist.p95, p99=hist.p99)
        out.update(self.counters)
        out["wait_class_seconds"] = dict(self.wait_class_seconds)
        return out


class PlanEntry:
    """One plan shape a statement fingerprint has executed with."""

    __slots__ = (
        "statement_fingerprint", "statement", "plan_fingerprint", "shape",
        "executions", "first_seen", "last_seen", "current", "flipped_from",
    )

    def __init__(self, stmt_fp: str, statement: str, plan_fp: str,
                 shape: str, flipped_from: Optional[str] = None):
        self.statement_fingerprint = stmt_fp
        self.statement = statement
        self.plan_fingerprint = plan_fp
        self.shape = shape
        self.executions = 0
        self.first_seen = time.time()
        self.last_seen = self.first_seen
        self.current = True
        self.flipped_from = flipped_from

    def as_dict(self) -> Dict[str, Any]:
        return {
            "statement_fingerprint": self.statement_fingerprint,
            "statement": self.statement,
            "plan_fingerprint": self.plan_fingerprint,
            "shape": self.shape,
            "executions": self.executions,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "current": self.current,
            "flipped_from": self.flipped_from,
        }


class StatementStore:
    """Bounded per-fingerprint statement/plan aggregates (see module
    docstring). Thread-safe: workload clients record concurrently."""

    #: distinct statement fingerprints kept (LRU-evicted beyond this)
    DEFAULT_CAPACITY = 512

    #: plan-flip events kept (newest last)
    FLIP_HISTORY = 256

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        #: the one flag the instrumented path reads
        self.enabled = False
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, StatementEntry]" = OrderedDict()
        #: stmt_fp -> [PlanEntry, ...] in first-seen order
        self._plans: Dict[str, List[PlanEntry]] = {}
        self._flips: Deque[Dict[str, Any]] = deque(maxlen=self.FLIP_HISTORY)
        self.plan_flips_total = 0
        #: called once per recorded flip (wired to the metrics counter)
        self.on_flip: Optional[Callable[[], None]] = None
        #: sql text -> (fingerprint, normalized) memo, LRU-bounded
        self._fingerprints: "OrderedDict[str, Tuple[str, str]]" = OrderedDict()

    # -- switches ----------------------------------------------------------

    def enable(self) -> "StatementStore":
        self.enabled = True
        return self

    def disable(self) -> "StatementStore":
        self.enabled = False
        return self

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()
            self._plans.clear()
            self._flips.clear()
            self._fingerprints.clear()
            self.plan_flips_total = 0

    # -- fingerprint memo --------------------------------------------------

    def _fingerprint(self, sql: str) -> Tuple[str, str]:
        with self._lock:
            memo = self._fingerprints.get(sql)
            if memo is not None:
                self._fingerprints.move_to_end(sql)
                return memo
        normalized = normalize(sql)
        fp = hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:12]
        with self._lock:
            if len(self._fingerprints) >= self.capacity:
                self._fingerprints.popitem(last=False)
            self._fingerprints[sql] = (fp, normalized)
        return fp, normalized

    def _entry(self, fp: str, normalized: str) -> StatementEntry:
        """Get-or-create under the store lock (caller holds it)."""
        entry = self._entries.get(fp)
        if entry is None:
            if len(self._entries) >= self.capacity:
                evicted_fp, _ = self._entries.popitem(last=False)
                self._plans.pop(evicted_fp, None)
            entry = self._entries[fp] = StatementEntry(fp, normalized)
        else:
            self._entries.move_to_end(fp)
        return entry

    # -- recording (engine-facing) -----------------------------------------

    def record(
        self,
        sql: str,
        seconds: float,
        rows: int,
        counters: Optional[Dict[str, int]] = None,
        outcome: str = "ok",
        wait_class_seconds: Optional[Dict[str, float]] = None,
    ) -> None:
        """Fold one finished execution into its fingerprint's entry.

        ``outcome`` is one of ``ok`` / ``abort`` / ``timeout`` /
        ``error``; anything but ``ok`` also counts as an error.
        """
        fp, normalized = self._fingerprint(sql)
        with self._lock:
            entry = self._entry(fp, normalized)
            entry.calls += 1
            entry.total_seconds += seconds
            entry.last_seen = time.time()
            entry.rows_returned += rows
            if outcome != "ok":
                entry.errors += 1
                if outcome == "abort":
                    entry.aborts += 1
                elif outcome == "timeout":
                    entry.timeouts += 1
            if counters:
                folded = entry.counters
                for field in _COUNTER_FIELDS:
                    value = counters.get(field)
                    if value:
                        folded[field] += value
            if wait_class_seconds:
                folded_waits = entry.wait_class_seconds
                for cls, value in wait_class_seconds.items():
                    if value:
                        folded_waits[cls] = (
                            folded_waits.get(cls, 0.0) + value
                        )
        # the histogram has its own lock discipline (metrics _LOCK)
        entry.histogram.observe(seconds)

    def record_retry(self, sql: str) -> None:
        """Count one client-side retry against a statement fingerprint."""
        fp, normalized = self._fingerprint(sql)
        with self._lock:
            self._entry(fp, normalized).retries += 1

    def record_plan(self, sql: str, plan: Any) -> Optional[Dict[str, Any]]:
        """File the plan one execution ran with; returns the flip event
        when the shape changed from the statement's current plan."""
        shape = plan_shape(plan)
        plan_fp = plan_fingerprint(shape)
        stmt_fp, normalized = self._fingerprint(sql)
        flip: Optional[Dict[str, Any]] = None
        with self._lock:
            plans = self._plans.get(stmt_fp)
            if plans is None:
                plans = self._plans[stmt_fp] = []
            current = next((p for p in plans if p.current), None)
            entry = next(
                (p for p in plans if p.plan_fingerprint == plan_fp), None
            )
            if current is not None and current.plan_fingerprint != plan_fp:
                current.current = False
                flip = {
                    "statement_fingerprint": stmt_fp,
                    "statement": normalized,
                    "from_plan": current.plan_fingerprint,
                    "from_shape": current.shape,
                    "to_plan": plan_fp,
                    "to_shape": shape,
                    "at": time.time(),
                }
                self._flips.append(flip)
                self.plan_flips_total += 1
            if entry is None:
                entry = PlanEntry(
                    stmt_fp, normalized, plan_fp, shape,
                    flipped_from=(
                        current.plan_fingerprint
                        if flip is not None else None
                    ),
                )
                plans.append(entry)
            entry.current = True
            entry.executions += 1
            entry.last_seen = time.time()
        if flip is not None and self.on_flip is not None:
            self.on_flip()
        return flip

    # -- views -------------------------------------------------------------

    def statements(self) -> List[StatementEntry]:
        """Entries ordered by total time, costliest first."""
        with self._lock:
            entries = list(self._entries.values())
        entries.sort(key=lambda e: e.total_seconds, reverse=True)
        return entries

    def plans(self) -> List[PlanEntry]:
        """Every plan entry, grouped by statement fingerprint."""
        with self._lock:
            return [
                plan for plans in self._plans.values() for plan in plans
            ]

    def flips(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._flips)

    def current_plan(self, sql: str) -> Optional[PlanEntry]:
        """The plan the statement currently executes with, if recorded."""
        stmt_fp, _ = self._fingerprint(sql)
        with self._lock:
            for plan in self._plans.get(stmt_fp, ()):
                if plan.current:
                    return plan
        return None

    def export(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The ``statements`` telemetry section (JSON-able)."""
        entries = self.statements()
        if limit is not None:
            entries = entries[:limit]
        return {
            "by_total_time": [entry.as_dict() for entry in entries],
            "plans": [plan.as_dict() for plan in self.plans()],
            "plan_flips": self.flips(),
            "plan_flips_total": self.plan_flips_total,
        }

    def render(self, limit: int = 20) -> str:
        """The ``jackpine stats --statements`` table."""
        lines = [
            f"-- statements by total time (top {limit}) --",
            f"{'calls':>7s} {'total':>9s} {'mean':>9s} {'p95':>9s} "
            f"{'rows':>8s} {'err':>4s}  statement",
        ]
        for entry in self.statements()[:limit]:
            hist = entry.histogram
            p95 = f"{hist.p95 * 1e3:7.2f}ms" if hist.count else "       --"
            statement = entry.statement
            if len(statement) > 56:
                statement = statement[:53] + "..."
            lines.append(
                f"{entry.calls:>7d} {entry.total_seconds * 1e3:7.2f}ms "
                f"{entry.mean_seconds * 1e3:7.2f}ms {p95} "
                f"{entry.rows_returned:>8d} {entry.errors:>4d}  {statement}"
            )
        if self.plan_flips_total:
            lines.append(
                f"-- plan flips: {self.plan_flips_total} recorded --"
            )
            for flip in self.flips()[-5:]:
                lines.append(
                    f"   {flip['statement'][:48]}: "
                    f"{flip['from_plan']} -> {flip['to_plan']}"
                )
        return "\n".join(lines)
