"""Trace spans: the per-operator measurement record.

A :class:`Span` mirrors one plan-operator node for one execution. It
records wall time, rows produced and the *inclusive* delta of the engine
counters (``rows_scanned``, ``index_probes``, ``join_pairs_considered``,
…) over the operator's lifetime; exclusive figures — what the operator
itself cost, minus its children — are derived on demand. Spans form a
tree congruent with the plan tree and serialise to plain dicts, which is
what the trace exporters and the benchmark telemetry consume.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple


class Span:
    """One operator's measurements for one statement execution."""

    __slots__ = (
        "op",
        "detail",
        "rows",
        "seconds",
        "started",
        "counters",
        "children",
        "_begin_counters",
    )

    def __init__(self, op: str, detail: str = "",
                 children: Optional[List["Span"]] = None):
        self.op = op
        self.detail = detail or op
        self.rows = 0
        self.seconds = 0.0
        #: perf_counter value at the first ``rows()`` call; ``None`` when
        #: the operator was planned but never pulled from
        self.started: Optional[float] = None
        #: inclusive engine-counter deltas (non-zero entries only)
        self.counters: Dict[str, int] = {}
        self.children: List["Span"] = children if children is not None else []
        self._begin_counters: Optional[Dict[str, int]] = None

    # -- lifecycle (driven by the executor's span wrapper) -----------------

    def begin(self, now: float, counters: Dict[str, int]) -> None:
        self.started = now
        self._begin_counters = counters

    def finish(self, rows: int, seconds: float,
               counters: Dict[str, int]) -> None:
        self.rows = rows
        self.seconds = seconds
        before = self._begin_counters
        if before is not None:
            self.counters = {
                key: value - before[key]
                for key, value in counters.items()
                if value != before.get(key, 0)
            }
            self._begin_counters = None

    # -- derived views -----------------------------------------------------

    @property
    def exclusive_seconds(self) -> float:
        """Time spent in this operator minus time in its children."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    def exclusive_counters(self) -> Dict[str, int]:
        """Counter deltas attributable to this operator alone."""
        out = dict(self.counters)
        for child in self.children:
            for key, value in child.counters.items():
                remaining = out.get(key, 0) - value
                if remaining:
                    out[key] = remaining
                else:
                    out.pop(key, None)
        return out

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "Span"]]:
        """Pre-order traversal as ``(depth, span)`` pairs."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def total_spans(self) -> int:
        return sum(1 for _ in self.walk())

    def find(self, op: str) -> Optional["Span"]:
        """First span (pre-order) whose operator name is ``op``."""
        for _depth, span in self.walk():
            if span.op == op:
                return span
        return None

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "op": self.op,
            "detail": self.detail,
            "rows": self.rows,
            "seconds": self.seconds,
            "counters": dict(self.counters),
        }
        if self.started is not None:
            out["started"] = self.started
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(
            data["op"],
            data.get("detail", ""),
            [cls.from_dict(c) for c in data.get("children", ())],
        )
        span.rows = data.get("rows", 0)
        span.seconds = data.get("seconds", 0.0)
        span.started = data.get("started")
        span.counters = dict(data.get("counters", ()))
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.op!r}, rows={self.rows}, "
            f"seconds={self.seconds:.6f}, children={len(self.children)})"
        )
