"""Structured benchmark telemetry: one stream, many consumers.

Every benchmark run can be reduced to a list of per-query records —
query id, engine profile, latency percentiles (p50/p95/p99), the
reference answer, and (when the harness captured an exemplar trace) the
per-operator breakdown. The J-report tables and the ``BENCH_*.json``
trajectory artifacts are both views over this stream:
:func:`run_records` builds it from a
:class:`~repro.core.benchmark.BenchmarkResult`, and
:func:`write_artifacts` serialises it to one JSON file per engine.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

SCHEMA = "jackpine-telemetry/1"


def timing_record(timing, engine: str, suite: str) -> Dict[str, Any]:
    """One telemetry record from a :class:`~repro.core.stats.QueryTiming`."""
    record: Dict[str, Any] = {
        "query_id": timing.query_id,
        "engine": engine,
        "suite": suite,
        "supported": timing.supported,
        "runs": timing.runs,
        "outcome": timing.outcome,
    }
    if timing.retries:
        record["retries"] = timing.retries
    if not timing.supported or not timing.ok:
        record["error"] = timing.error
        return record
    record.update(
        {
            "p50": timing.p50,
            "p95": timing.p95,
            "p99": timing.p99,
            "mean": timing.mean,
            "min": timing.minimum,
            "max": timing.maximum,
            "result": _jsonable(timing.result_value),
        }
    )
    trace = timing.trace
    if trace is not None:
        record["operators"] = trace.operator_breakdown()
        record["counters"] = dict(trace.counters)
    return record


def scenario_record(scenario, engine: str) -> Dict[str, Any]:
    """One telemetry record per macro scenario, steps included."""
    steps: List[Dict[str, Any]] = []
    for step in scenario.steps:
        entry: Dict[str, Any] = {
            "label": step.label,
            "seconds": step.seconds,
            "rows": step.rows,
            "skipped": step.skipped,
            "outcome": step.outcome,
        }
        if step.retries:
            entry["retries"] = step.retries
        if step.error and not step.skipped:
            entry["error"] = step.error
        if step.trace is not None:
            entry["operators"] = step.trace.operator_breakdown()
        steps.append(entry)
    return {
        "query_id": f"macro.{scenario.scenario}",
        "engine": engine,
        "suite": "macro",
        "supported": True,
        "queries_per_minute": scenario.queries_per_minute,
        "executed": scenario.executed,
        "skipped": scenario.skipped,
        "failed": scenario.failed,
        "total_seconds": scenario.total_seconds,
        "steps": steps,
    }


def run_records(result) -> List[Dict[str, Any]]:
    """The full telemetry stream for one benchmark run."""
    records: List[Dict[str, Any]] = []
    for engine, run in result.runs.items():
        for timing in run.micro.values():
            suite = (
                "micro.topology"
                if timing.query_id.startswith("topo")
                else "micro.analysis"
            )
            records.append(timing_record(timing, engine, suite))
        for scenario in run.macro.values():
            records.append(scenario_record(scenario, engine))
        if run.loading is not None:
            for layer in run.loading.layers:
                records.append(
                    {
                        "query_id": f"loading.{layer.layer}",
                        "engine": engine,
                        "suite": "loading",
                        "supported": True,
                        "rows": layer.rows,
                        "insert_seconds": layer.insert_seconds,
                        "index_seconds": layer.index_seconds,
                    }
                )
    return records


def run_document(result) -> Dict[str, Any]:
    """The artifact envelope: config header plus the record stream."""
    config = result.config
    return {
        "schema": SCHEMA,
        "config": {
            "engines": list(config.engines),
            "seed": config.seed,
            "scale": config.scale,
            "repeats": config.repeats,
            "warmups": config.warmups,
            "with_indexes": config.with_indexes,
        },
        "dataset_rows": result.dataset_rows,
        "records": run_records(result),
    }


def write_artifacts(result, out_dir: str) -> List[str]:
    """Write one ``telemetry_<engine>.json`` per engine; returns paths."""
    os.makedirs(out_dir, exist_ok=True)
    document = run_document(result)
    paths: List[str] = []
    for engine in result.engines():
        engine_doc = dict(document)
        engine_doc["engine"] = engine
        engine_doc["records"] = [
            r for r in document["records"] if r["engine"] == engine
        ]
        path = os.path.join(out_dir, f"telemetry_{engine}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(engine_doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)
