"""Statement traces and exporters.

A :class:`Trace` ties one executed statement to its operator span tree
(for SELECTs run under tracing) and to the statement-level counter
deltas every statement gets. Two interchange formats are supported:

- **JSON lines** — one header object plus one object per span, each
  span carrying an ``id``/``parent`` pair so the tree round-trips
  (:meth:`Trace.to_json_lines` / :meth:`Trace.from_json_lines`);
- **Chrome trace events** — the ``chrome://tracing`` / Perfetto JSON
  format, complete ("X") events with microsecond timestamps
  (:meth:`Trace.to_chrome_trace`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.span import Span


class Trace:
    """Everything recorded about one statement execution."""

    __slots__ = (
        "sql",
        "engine",
        "statement",
        "seconds",
        "started_at",
        "rows",
        "counters",
        "root",
    )

    def __init__(
        self,
        sql: str,
        engine: str,
        statement: str,
        seconds: float,
        started_at: float,
        rows: int,
        counters: Dict[str, int],
        root: Optional[Span] = None,
    ):
        self.sql = sql
        self.engine = engine
        #: AST statement class name, e.g. ``Select`` / ``Insert``
        self.statement = statement
        self.seconds = seconds
        #: wall-clock epoch seconds when execution began
        self.started_at = started_at
        self.rows = rows
        #: engine-counter deltas over the whole statement
        self.counters = counters
        #: operator span tree (``None`` for untraced / non-SELECT runs)
        self.root = root

    # -- convenience -------------------------------------------------------

    def spans(self) -> List[Span]:
        """All spans in pre-order (empty when the run was untraced)."""
        if self.root is None:
            return []
        return [span for _depth, span in self.root.walk()]

    def operator_breakdown(self) -> List[Dict[str, Any]]:
        """Flat per-operator rows for reports and telemetry artifacts."""
        out: List[Dict[str, Any]] = []
        if self.root is None:
            return out
        for depth, span in self.root.walk():
            out.append(
                {
                    "depth": depth,
                    "op": span.op,
                    "detail": span.detail,
                    "rows": span.rows,
                    "seconds": span.seconds,
                    "exclusive_seconds": span.exclusive_seconds,
                    "counters": span.exclusive_counters(),
                }
            )
        return out

    # -- dict / JSON-lines round trip --------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sql": self.sql,
            "engine": self.engine,
            "statement": self.statement,
            "seconds": self.seconds,
            "started_at": self.started_at,
            "rows": self.rows,
            "counters": dict(self.counters),
            "root": self.root.to_dict() if self.root is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Trace":
        root = data.get("root")
        return cls(
            sql=data["sql"],
            engine=data["engine"],
            statement=data["statement"],
            seconds=data["seconds"],
            started_at=data["started_at"],
            rows=data["rows"],
            counters=dict(data.get("counters", ())),
            root=Span.from_dict(root) if root is not None else None,
        )

    def to_json_lines(self) -> str:
        """One ``trace`` header line plus one line per span."""
        header = self.to_dict()
        header.pop("root")
        header["type"] = "trace"
        lines = [json.dumps(header, sort_keys=True)]
        if self.root is not None:
            flat: List[Dict[str, Any]] = []

            def emit(span: Span, parent: Optional[int]) -> None:
                record = span.to_dict()
                record.pop("children", None)
                record["type"] = "span"
                record["id"] = len(flat)
                record["parent"] = parent
                flat.append(record)
                my_id = record["id"]
                for child in span.children:
                    emit(child, my_id)

            emit(self.root, None)
            lines.extend(json.dumps(r, sort_keys=True) for r in flat)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_json_lines(cls, text: str) -> "Trace":
        header: Optional[Dict[str, Any]] = None
        spans: Dict[int, Span] = {}
        root: Optional[Span] = None
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "trace":
                header = record
                continue
            span = Span.from_dict(record)
            spans[record["id"]] = span
            parent = record.get("parent")
            if parent is None:
                root = span
            else:
                spans[parent].children.append(span)
        if header is None:
            raise ValueError("no trace header line found")
        header["root"] = None
        trace = cls.from_dict(header)
        trace.root = root
        return trace

    # -- Chrome trace-event export -----------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The ``chrome://tracing`` JSON object for this statement."""
        events: List[Dict[str, Any]] = []
        origin = None
        if self.root is not None and self.root.started is not None:
            origin = self.root.started
        for _depth, span in (self.root.walk() if self.root else ()):
            start = span.started if span.started is not None else origin
            offset = 0.0
            if origin is not None and start is not None:
                offset = max(0.0, start - origin)
            events.append(
                {
                    "name": span.op,
                    "cat": "operator",
                    "ph": "X",
                    "ts": round(offset * 1e6, 3),
                    "dur": round(span.seconds * 1e6, 3),
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        "detail": span.detail,
                        "rows": span.rows,
                        "counters": span.exclusive_counters(),
                    },
                }
            )
        return {
            "traceEvents": events,
            "otherData": {
                "sql": self.sql,
                "engine": self.engine,
                "statement": self.statement,
                "seconds": self.seconds,
                "rows": self.rows,
                "counters": dict(self.counters),
            },
        }

    def render(self) -> str:
        """Human-readable indented view (what ``EXPLAIN ANALYZE`` prints)."""
        lines = [
            f"-- {self.statement} on {self.engine}: "
            f"{self.seconds * 1e3:.2f}ms, {self.rows} rows"
        ]
        if self.root is not None:
            for depth, span in self.root.walk():
                extras = "".join(
                    f", {k}={v}"
                    for k, v in sorted(span.exclusive_counters().items())
                )
                lines.append(
                    "  " * depth
                    + f"{span.detail}  (rows={span.rows}, "
                    f"time={span.seconds * 1e3:.2f}ms{extras})"
                )
        return "\n".join(lines)
