"""Instrumentation hook points fired by the engine.

Three events exist:

- ``query_start(sql, params)`` — before a statement executes;
- ``query_end(trace)`` — after it finishes, with the statement
  :class:`~repro.obs.trace.Trace` (span tree included when tracing);
- ``operator_close(span)`` — as each traced plan operator finishes.

Hook lists are plain and dumb on purpose: the engine checks one
attribute to know whether anything is registered, so an idle hook system
costs a single truth test per statement.
"""

from __future__ import annotations

from typing import Any, Callable, List


class Hooks:
    """Registered callback lists for the three engine events."""

    __slots__ = ("query_start", "query_end", "operator_close")

    def __init__(self) -> None:
        self.query_start: List[Callable[[str, tuple], Any]] = []
        self.query_end: List[Callable[[Any], Any]] = []
        self.operator_close: List[Callable[[Any], Any]] = []

    def __bool__(self) -> bool:
        return bool(self.query_start or self.query_end or self.operator_close)

    def fire_query_start(self, sql: str, params: tuple) -> None:
        for callback in self.query_start:
            callback(sql, params)

    def fire_query_end(self, trace: Any) -> None:
        for callback in self.query_end:
            callback(trace)

    def fire_operator_close(self, span: Any) -> None:
        for callback in self.operator_close:
            callback(span)
