"""Public set-theoretic operations: intersection, union, difference,
symmetric difference — the ``ST_Intersection`` / ``ST_Union`` /
``ST_Difference`` / ``ST_SymDifference`` family.

Areal × areal cases delegate to the clipper in
:mod:`repro.algorithms.clipping`; mixed-dimension cases are computed by
splitting the lower-dimensional operand at the other's boundary and
classifying pieces — the same split-and-sample idea the DE-9IM engine uses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.algorithms import clipping
from repro.algorithms.location import Location, locate
from repro.algorithms.predicates import segment_intersection
from repro.errors import GeometryError
from repro.geometry.base import Coord, Geometry
from repro.geometry.collection import EMPTY, GeometryCollection
from repro.geometry.linestring import LineString, MultiLineString
from repro.geometry.point import MultiPoint, Point
from repro.geometry.polygon import MultiPolygon, Polygon

_INT, _BND, _EXT = Location.INTERIOR, Location.BOUNDARY, Location.EXTERIOR


def _is_areal(geom: Geometry) -> bool:
    return isinstance(geom, (Polygon, MultiPolygon))


def _is_lineal(geom: Geometry) -> bool:
    return isinstance(geom, (LineString, MultiLineString))


def _is_puntal(geom: Geometry) -> bool:
    return isinstance(geom, (Point, MultiPoint))


def _points_of(geom: Geometry) -> List[Coord]:
    if isinstance(geom, Point):
        return [geom.coord]
    return [p.coord for p in geom.points]  # type: ignore[union-attr]


def _collect(members: Sequence[Geometry]) -> Geometry:
    """Pack result members into the tightest geometry type."""
    flat: List[Geometry] = []
    for m in members:
        if m is None or m.is_empty:
            continue
        if isinstance(m, GeometryCollection):
            flat.extend(m.geoms)
        elif isinstance(m, MultiPoint):
            flat.extend(m.points)
        elif isinstance(m, MultiLineString):
            flat.extend(m.lines)
        elif isinstance(m, MultiPolygon):
            flat.extend(m.polygons)
        else:
            flat.append(m)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    if all(isinstance(m, Point) for m in flat):
        unique = list(dict.fromkeys(p.coord for p in flat))  # type: ignore[union-attr]
        if len(unique) == 1:
            return Point(*unique[0])
        return MultiPoint(unique)
    if all(isinstance(m, LineString) for m in flat):
        return MultiLineString(flat)
    if all(isinstance(m, Polygon) for m in flat):
        return MultiPolygon(flat)
    return GeometryCollection(flat)


def _line_segments(geom: Geometry) -> List[Tuple[Coord, Coord]]:
    return list(geom.segments())  # type: ignore[union-attr]


def _split_line_at(geom: Geometry, other: Geometry) -> List[Tuple[Coord, Coord]]:
    """All segments of lineal ``geom`` split at intersections with the
    boundary segments (or segments) of ``other``."""
    if _is_areal(other):
        other_segs = clipping._boundary_segments(other)
    elif _is_lineal(other):
        other_segs = _line_segments(other)
    else:
        other_segs = []
    pieces: List[Tuple[Coord, Coord]] = []
    for a, b in _line_segments(geom):
        cuts: List[Coord] = []
        for c, d in other_segs:
            hit = segment_intersection(a, b, c, d)
            if hit is None:
                continue
            if isinstance(hit, tuple) and hit and isinstance(hit[0], tuple):
                cuts.extend(hit)
            else:
                cuts.append(hit)  # type: ignore[arg-type]
        if _is_puntal(other):
            for p in _points_of(other):
                from repro.algorithms.predicates import on_segment

                if on_segment(p, a, b):
                    cuts.append(p)
        pieces.extend(_cut_segment(a, b, cuts))
    return pieces


def _cut_segment(
    a: Coord, b: Coord, cuts: List[Coord]
) -> List[Tuple[Coord, Coord]]:
    if not cuts:
        return [(a, b)]
    dx, dy = b[0] - a[0], b[1] - a[1]
    use_x = abs(dx) >= abs(dy)

    def param(p: Coord) -> float:
        return (p[0] - a[0]) / dx if use_x else (p[1] - a[1]) / dy

    waypoints = [a]
    for t, p in sorted((param(p), p) for p in cuts):
        if 1e-12 < t < 1.0 - 1e-12 and p != waypoints[-1]:
            waypoints.append(p)
    waypoints.append(b)
    return [(s, e) for s, e in zip(waypoints, waypoints[1:]) if s != e]


def _merge_pieces(pieces: List[Tuple[Coord, Coord]]) -> List[LineString]:
    """Chain contiguous pieces into maximal linestrings."""
    if not pieces:
        return []
    remaining = list(pieces)
    lines: List[LineString] = []
    while remaining:
        start, end = remaining.pop()
        chain = [start, end]
        extended = True
        while extended:
            extended = False
            for i, (s, e) in enumerate(remaining):
                if s == chain[-1]:
                    chain.append(e)
                    remaining.pop(i)
                    extended = True
                    break
                if e == chain[-1]:
                    chain.append(s)
                    remaining.pop(i)
                    extended = True
                    break
                if e == chain[0]:
                    chain.insert(0, s)
                    remaining.pop(i)
                    extended = True
                    break
                if s == chain[0]:
                    chain.insert(0, e)
                    remaining.pop(i)
                    extended = True
                    break
        lines.append(LineString(chain))
    return lines


def _midpoint(a: Coord, b: Coord) -> Coord:
    return ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)


# ---------------------------------------------------------------------------
# intersection
# ---------------------------------------------------------------------------


def intersection(a: Geometry, b: Geometry) -> Geometry:
    """Point-set intersection of two geometries."""
    if a.is_empty or b.is_empty:
        return EMPTY
    if not a.envelope.intersects(b.envelope):
        return EMPTY
    if _is_puntal(a):
        hits = [p for p in _points_of(a) if locate(p, b) is not _EXT]
        return _collect([Point(*p) for p in hits])
    if _is_puntal(b):
        return intersection(b, a)
    if _is_lineal(a) and _is_areal(b):
        return _line_areal_intersection(a, b)
    if _is_areal(a) and _is_lineal(b):
        return _line_areal_intersection(b, a)
    if _is_lineal(a) and _is_lineal(b):
        return _line_line_intersection(a, b)
    if _is_areal(a) and _is_areal(b):
        parts, line_pieces, touch_pts = clipping.overlay(a, b, "intersection")
        members: List[Geometry] = []
        areal = clipping.polygons_from_overlay(parts)
        if areal is not None:
            members.append(areal)
        members.extend(_merge_pieces(line_pieces))
        members.extend(Point(*p) for p in touch_pts)
        return _collect(members)
    if isinstance(a, GeometryCollection):
        return _collect([intersection(m, b) for m in a.geoms])
    if isinstance(b, GeometryCollection):
        return _collect([intersection(a, m) for m in b.geoms])
    raise GeometryError(
        f"intersection of {type(a).__name__} and {type(b).__name__}"
    )


def _line_areal_intersection(line: Geometry, areal: Geometry) -> Geometry:
    kept: List[Tuple[Coord, Coord]] = []
    touch: List[Coord] = []
    for s, e in _split_line_at(line, areal):
        where = locate(_midpoint(s, e), areal)
        if where is not _EXT:
            kept.append((s, e))
        else:
            for p in (s, e):
                if locate(p, areal) is not _EXT:
                    touch.append(p)
    members: List[Geometry] = list(_merge_pieces(kept))
    covered = set()
    for ln in members:
        covered.update(ln.coords)  # type: ignore[union-attr]
    for p in dict.fromkeys(touch):
        if p not in covered:
            members.append(Point(*p))
    return _collect(members)


def _line_line_intersection(a: Geometry, b: Geometry) -> Geometry:
    kept: List[Tuple[Coord, Coord]] = []
    points: List[Coord] = []
    for s, e in _split_line_at(a, b):
        mid = _midpoint(s, e)
        if locate(mid, b) is not _EXT:
            kept.append((s, e))
        else:
            for p in (s, e):
                if locate(p, b) is not _EXT and locate(p, a) is not _EXT:
                    points.append(p)
    members: List[Geometry] = list(_merge_pieces(kept))
    covered = set()
    for ln in members:
        covered.update(ln.coords)  # type: ignore[union-attr]
    for p in dict.fromkeys(points):
        if p not in covered:
            members.append(Point(*p))
    return _collect(members)


# ---------------------------------------------------------------------------
# union
# ---------------------------------------------------------------------------


def union(a: Geometry, b: Geometry) -> Geometry:
    """Point-set union."""
    if a.is_empty:
        return b
    if b.is_empty:
        return a
    if _is_areal(a) and _is_areal(b):
        if not a.envelope.intersects(b.envelope):
            return _collect([a, b])
        merged = clipping.overlay_areal(a, b, "union")
        if merged is None:  # degenerate: fall back to collecting
            return _collect([a, b])
        return merged
    if _is_puntal(a) and _is_puntal(b):
        coords = list(dict.fromkeys(_points_of(a) + _points_of(b)))
        return _collect([Point(*p) for p in coords])
    if _is_lineal(a) and _is_lineal(b):
        pieces = _split_line_at(a, b)
        pieces += [
            (s, e)
            for s, e in _split_line_at(b, a)
            if locate(_midpoint(s, e), a) is _EXT
        ]
        return _collect(_merge_pieces(pieces))
    # mixed dimensions: keep the lower-dimensional part not absorbed by the
    # higher-dimensional operand
    hi, lo = (a, b) if a.dimension >= b.dimension else (b, a)
    leftover = difference(lo, hi)
    return _collect([hi, leftover])


def union_all(geoms: Sequence[Geometry]) -> Geometry:
    """Cascaded union (balanced tree, the way ``ST_Union(agg)`` works)."""
    items = [g for g in geoms if g is not None and not g.is_empty]
    if not items:
        return EMPTY
    while len(items) > 1:
        merged: List[Geometry] = []
        for i in range(0, len(items) - 1, 2):
            merged.append(union(items[i], items[i + 1]))
        if len(items) % 2:
            merged.append(items[-1])
        items = merged
    return items[0]


# ---------------------------------------------------------------------------
# difference
# ---------------------------------------------------------------------------


def difference(a: Geometry, b: Geometry) -> Geometry:
    """Point-set difference ``a - b``."""
    if a.is_empty:
        return EMPTY
    if b.is_empty or not a.envelope.intersects(b.envelope):
        return a
    if _is_puntal(a):
        kept = [p for p in _points_of(a) if locate(p, b) is _EXT]
        return _collect([Point(*p) for p in kept])
    if _is_lineal(a):
        if b.dimension == 0:
            return a  # removing isolated points leaves the line intact
        kept_segments = [
            (s, e)
            for s, e in _split_line_at(a, b)
            if locate(_midpoint(s, e), b) is _EXT
        ]
        return _collect(_merge_pieces(kept_segments))
    if _is_areal(a):
        if b.dimension < 2:
            return a  # removing measure-zero sets leaves the area intact
        result = clipping.overlay_areal(a, b, "difference")
        return result if result is not None else EMPTY
    if isinstance(a, GeometryCollection):
        return _collect([difference(m, b) for m in a.geoms])
    raise GeometryError(f"difference of {type(a).__name__} and {type(b).__name__}")


def sym_difference(a: Geometry, b: Geometry) -> Geometry:
    """Point-set symmetric difference."""
    if a.is_empty:
        return b
    if b.is_empty:
        return a
    if _is_areal(a) and _is_areal(b):
        if not a.envelope.intersects(b.envelope):
            return _collect([a, b])
        result = clipping.overlay_areal(a, b, "sym_difference")
        return result if result is not None else EMPTY
    if a.dimension == b.dimension:
        return _collect([difference(a, b), difference(b, a)])
    return _collect([difference(a, b), difference(b, a)])
