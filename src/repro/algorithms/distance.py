"""Geometry-to-geometry minimum distance (``ST_Distance``).

Strategy: decompose each geometry into points and segments, take the
pairwise minimum, and short-circuit to zero whenever one geometry's
representative point is inside an areal operand (containment means the
distance is zero without any boundary work). Envelope distance provides a
cheap lower bound used to prune multi-part comparisons.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

from repro.algorithms.location import Location, locate
from repro.algorithms.predicates import (
    point_segment_distance,
    segment_segment_distance,
)
from repro.geometry.base import Coord, Geometry
from repro.geometry.collection import GeometryCollection
from repro.geometry.linestring import LineString, MultiLineString
from repro.geometry.point import MultiPoint, Point
from repro.geometry.polygon import MultiPolygon, Polygon

Segment = Tuple[Coord, Coord]


def _decompose(geom: Geometry) -> Tuple[List[Coord], List[Segment]]:
    """(isolated points, segments) making up the geometry's point set."""
    if isinstance(geom, Point):
        return [geom.coord], []
    if isinstance(geom, MultiPoint):
        return [p.coord for p in geom.points], []
    if isinstance(geom, (LineString, MultiLineString)):
        return [], list(geom.segments())
    if isinstance(geom, (Polygon, MultiPolygon)):
        return [], list(geom.segments())
    if isinstance(geom, GeometryCollection):
        points: List[Coord] = []
        segments: List[Segment] = []
        for member in geom.geoms:
            p, s = _decompose(member)
            points.extend(p)
            segments.extend(s)
        return points, segments
    raise TypeError(f"cannot decompose {type(geom).__name__}")


def _areal_members(geom: Geometry) -> Iterable[Geometry]:
    if isinstance(geom, (Polygon, MultiPolygon)):
        yield geom
    elif isinstance(geom, GeometryCollection):
        for member in geom.geoms:
            yield from _areal_members(member)


def _representative(geom: Geometry) -> Coord:
    return next(geom.coords_iter())


def distance(a: Geometry, b: Geometry) -> float:
    """Minimum Euclidean distance between two geometries."""
    if a.is_empty or b.is_empty:
        return math.inf
    # Inside-an-area short circuit, both directions.
    for areal, other in ((a, b), (b, a)):
        for member in _areal_members(areal):
            if locate(_representative(other), member) is not Location.EXTERIOR:
                return 0.0
    pts_a, segs_a = _decompose(a)
    pts_b, segs_b = _decompose(b)
    best = math.inf
    for p in pts_a:
        for q in pts_b:
            best = min(best, math.hypot(p[0] - q[0], p[1] - q[1]))
        for c, d in segs_b:
            best = min(best, point_segment_distance(p, c, d))
            if best == 0.0:
                return 0.0
    for q in pts_b:
        for c, d in segs_a:
            best = min(best, point_segment_distance(q, c, d))
            if best == 0.0:
                return 0.0
    for s, t in segs_a:
        for c, d in segs_b:
            best = min(best, segment_segment_distance(s, t, c, d))
            if best == 0.0:
                return 0.0
    return best


def dwithin(a: Geometry, b: Geometry, radius: float) -> bool:
    """``ST_DWithin``: are the geometries within ``radius`` of each other?

    Uses the envelope lower bound to bail out before exact work.
    """
    if a.envelope.distance(b.envelope) > radius:
        return False
    return distance(a, b) <= radius


def _closest_point_on_segment(p: Coord, a: Coord, b: Coord) -> Coord:
    dx, dy = b[0] - a[0], b[1] - a[1]
    seg2 = dx * dx + dy * dy
    if seg2 == 0.0:
        return a
    t = max(0.0, min(1.0, ((p[0] - a[0]) * dx + (p[1] - a[1]) * dy) / seg2))
    return (a[0] + t * dx, a[1] + t * dy)


def closest_points(a: Geometry, b: Geometry) -> Tuple[Coord, Coord]:
    """The closest pair of points (one on each geometry) —
    ``ST_ClosestPoint`` returns the first, ``ST_ShortestLine`` both.

    When the geometries intersect, a shared point is returned twice (for
    areal containment, the contained operand's representative point).
    """
    from repro.algorithms.location import Location, locate

    # containment/overlap short-circuit mirroring distance()
    for areal, other, flip in ((a, b, False), (b, a, True)):
        for member in _areal_members(areal):
            probe = _representative(other)
            if locate(probe, member) is not Location.EXTERIOR:
                return (probe, probe)
    pts_a, segs_a = _decompose(a)
    pts_b, segs_b = _decompose(b)
    best = math.inf
    best_pair: Tuple[Coord, Coord] = (_representative(a), _representative(b))

    def consider(pa: Coord, pb: Coord) -> None:
        nonlocal best, best_pair
        d = math.hypot(pa[0] - pb[0], pa[1] - pb[1])
        if d < best:
            best = d
            best_pair = (pa, pb)

    for p in pts_a:
        for q in pts_b:
            consider(p, q)
        for c, d in segs_b:
            consider(p, _closest_point_on_segment(p, c, d))
    for q in pts_b:
        for c, d in segs_a:
            consider(_closest_point_on_segment(q, c, d), q)
    for s, t in segs_a:
        for c, d in segs_b:
            # candidate pairs from each endpoint projected onto the other
            for p in (s, t):
                consider(p, _closest_point_on_segment(p, c, d))
            for q in (c, d):
                consider(_closest_point_on_segment(q, s, t), q)
            hit = None
            from repro.algorithms.predicates import segment_intersection

            hit = segment_intersection(s, t, c, d)
            if hit is not None:
                point = hit[0] if isinstance(hit[0], tuple) else hit
                consider(point, point)  # type: ignore[arg-type]
    return best_pair


def closest_point(a: Geometry, b: Geometry):
    """``ST_ClosestPoint(a, b)``: the point on ``a`` closest to ``b``."""
    from repro.geometry.point import Point

    pa, _pb = closest_points(a, b)
    return Point(*pa)


def shortest_line(a: Geometry, b: Geometry):
    """``ST_ShortestLine(a, b)`` (None when the geometries intersect)."""
    from repro.geometry.linestring import LineString

    pa, pb = closest_points(a, b)
    if pa == pb:
        return None
    return LineString([pa, pb])
