"""Buffer computation (``ST_Buffer``).

Strategy: a positive buffer is the union of round-capped *capsules* built
around every segment (plus the original area for polygons); discs stand in
for point buffers. Negative polygon buffers erode by subtracting boundary
capsules. Capsule unions run through the cascaded overlay union, so buffer
quality is bounded by ``quad_segs`` exactly like in PostGIS.
"""

from __future__ import annotations

import math
from typing import List

from repro.algorithms.overlay import difference, union_all
from repro.errors import GeometryError
from repro.geometry.base import Coord, Geometry
from repro.geometry.collection import EMPTY, GeometryCollection
from repro.geometry.linestring import LineString, MultiLineString
from repro.geometry.point import MultiPoint, Point
from repro.geometry.polygon import MultiPolygon, Polygon


def circle(center: Coord, radius: float, quad_segs: int = 8) -> Polygon:
    """A regular polygon approximating a disc (4 * quad_segs vertices)."""
    if radius <= 0.0:
        raise GeometryError("circle radius must be positive")
    n = max(4 * quad_segs, 8)
    cx, cy = center
    coords = [
        (cx + radius * math.cos(2.0 * math.pi * i / n),
         cy + radius * math.sin(2.0 * math.pi * i / n))
        for i in range(n)
    ]
    return Polygon(coords)


def segment_capsule(
    a: Coord, b: Coord, radius: float, quad_segs: int = 8
) -> Polygon:
    """A round-capped rectangle (stadium) around segment ab."""
    if a == b:
        return circle(a, radius, quad_segs)
    dx, dy = b[0] - a[0], b[1] - a[1]
    norm = math.hypot(dx, dy)
    ux, uy = dx / norm, dy / norm
    nx, ny = -uy, ux  # left normal
    base = math.atan2(ny, nx)
    n = max(quad_segs * 2, 4)
    coords: List[Coord] = []
    coords.append((a[0] + radius * nx, a[1] + radius * ny))
    # cap around a: sweep from +normal to -normal going through -direction
    for i in range(1, n):
        ang = base + math.pi * i / n
        coords.append((a[0] + radius * math.cos(ang), a[1] + radius * math.sin(ang)))
    coords.append((a[0] - radius * nx, a[1] - radius * ny))
    coords.append((b[0] - radius * nx, b[1] - radius * ny))
    # cap around b: sweep from -normal back to +normal through +direction
    for i in range(1, n):
        ang = base + math.pi + math.pi * i / n
        coords.append((b[0] + radius * math.cos(ang), b[1] + radius * math.sin(ang)))
    coords.append((b[0] + radius * nx, b[1] + radius * ny))
    return Polygon(coords)


def buffer(geom: Geometry, radius: float, quad_segs: int = 8) -> Geometry:
    """Buffer a geometry by ``radius`` (negative radius erodes polygons)."""
    if geom.is_empty:
        return EMPTY
    if radius == 0.0:
        return geom
    if radius < 0.0:
        if not isinstance(geom, (Polygon, MultiPolygon)):
            return EMPTY  # eroding a point or curve leaves nothing
        return _erode(geom, -radius, quad_segs)
    if isinstance(geom, Point):
        return circle(geom.coord, radius, quad_segs)
    if isinstance(geom, MultiPoint):
        return union_all(
            [circle(p.coord, radius, quad_segs) for p in geom.points]
        )
    if isinstance(geom, (LineString, MultiLineString)):
        capsules = [
            segment_capsule(a, b, radius, quad_segs) for a, b in geom.segments()
        ]
        return union_all(capsules)
    if isinstance(geom, (Polygon, MultiPolygon)):
        capsules: List[Geometry] = [
            segment_capsule(a, b, radius, quad_segs) for a, b in geom.segments()
        ]
        return union_all([geom] + capsules)
    if isinstance(geom, GeometryCollection):
        return union_all([buffer(m, radius, quad_segs) for m in geom.geoms])
    raise GeometryError(f"cannot buffer {type(geom).__name__}")


def _erode(geom: Geometry, radius: float, quad_segs: int) -> Geometry:
    band = union_all(
        [segment_capsule(a, b, radius, quad_segs) for a, b in geom.segments()]
    )
    return difference(geom, band)
