"""Convex hull via Andrew's monotone chain (``ST_ConvexHull``)."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import GeometryError
from repro.geometry.base import Coord, Geometry
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


def _cross(o: Coord, a: Coord, b: Coord) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull_coords(coords: Sequence[Coord]) -> List[Coord]:
    """Hull vertices in counter-clockwise order (no closing repeat).

    Collinear input degenerates to the two extreme points; a single point
    degenerates to itself.
    """
    pts = sorted(set(coords))
    if not pts:
        raise GeometryError("convex hull of zero points")
    if len(pts) <= 2:
        return pts
    lower: List[Coord] = []
    for p in pts:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: List[Coord] = []
    for p in reversed(pts):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


def convex_hull(geom: Geometry) -> Geometry:
    """Convex hull as a geometry: Point, LineString or Polygon by rank."""
    hull = convex_hull_coords(list(geom.coords_iter()))
    if len(hull) == 1:
        return Point(*hull[0])
    if len(hull) == 2:
        return LineString(hull)
    return Polygon(hull)
