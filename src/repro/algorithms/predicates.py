"""Primitive geometric predicates: orientation and segment intersection.

These are the leaves every higher-level routine (point location, DE-9IM,
overlay, hull) rests on. Orientation uses a relative-epsilon filter around
the 2x2 determinant: exact enough for the coordinate magnitudes the
benchmark generates (a state-sized plane, |coord| < 1e7) while staying
pure Python.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

from repro.geometry.base import Coord

# Relative tolerance for the orientation determinant. The determinant of
# three points with magnitude M carries roundoff ~ M^2 * 2^-52; a filter a
# few orders above that treats near-degenerate triples as collinear, which
# is the stable choice for benchmark data snapped to a grid.
_REL_EPS = 1e-12


def orientation(a: Coord, b: Coord, c: Coord) -> int:
    """Sign of the signed area of triangle abc: 1 = ccw, -1 = cw, 0 = collinear.

    The zero filter has two parts: a term relative to the determinant's own
    operands (roundoff of this computation) and a floor proportional to
    coordinate magnitude times the ab span — the error a *derived* input
    point (e.g. a previously computed segment intersection) carries is
    ``eps * |coord|``, which the purely relative term misses when ``c``
    happens to land near ``a`` or ``b``.
    """
    det = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    scale = (
        abs(b[0] - a[0]) * abs(c[1] - a[1]) + abs(b[1] - a[1]) * abs(c[0] - a[0])
    )
    magnitude = max(
        abs(a[0]), abs(a[1]), abs(b[0]), abs(b[1]), abs(c[0]), abs(c[1])
    )
    span = abs(b[0] - a[0]) + abs(b[1] - a[1])
    if abs(det) <= _REL_EPS * (scale + magnitude * span):
        return 0
    return 1 if det > 0.0 else -1


def collinear(a: Coord, b: Coord, c: Coord) -> bool:
    return orientation(a, b, c) == 0


def on_segment(p: Coord, a: Coord, b: Coord) -> bool:
    """True iff point ``p`` lies on the closed segment ``ab``."""
    if orientation(a, b, p) != 0:
        return False
    return (
        min(a[0], b[0]) - _abs_eps(a, b) <= p[0] <= max(a[0], b[0]) + _abs_eps(a, b)
        and min(a[1], b[1]) - _abs_eps(a, b) <= p[1] <= max(a[1], b[1]) + _abs_eps(a, b)
    )


def _abs_eps(a: Coord, b: Coord) -> float:
    scale = max(abs(a[0]), abs(a[1]), abs(b[0]), abs(b[1]), 1.0)
    return _REL_EPS * scale


SegmentIntersection = Union[None, Coord, Tuple[Coord, Coord]]


def segment_intersection(
    a: Coord, b: Coord, c: Coord, d: Coord
) -> SegmentIntersection:
    """Intersection of closed segments ab and cd.

    Returns ``None`` (disjoint), a single coordinate (point intersection,
    including endpoint touches), or a coordinate pair (collinear overlap,
    ordered along the shared line).
    """
    o1 = orientation(a, b, c)
    o2 = orientation(a, b, d)
    o3 = orientation(c, d, a)
    o4 = orientation(c, d, b)

    if o1 != o2 and o3 != o4 and o1 != 0 and o2 != 0 and o3 != 0 and o4 != 0:
        return _proper_intersection_point(a, b, c, d)

    if o1 == 0 and o2 == 0 and o3 == 0 and o4 == 0:
        return _collinear_overlap(a, b, c, d)

    # touching cases: one endpoint on the other segment
    touches = []
    if o1 == 0 and on_segment(c, a, b):
        touches.append(c)
    if o2 == 0 and on_segment(d, a, b):
        touches.append(d)
    if o3 == 0 and on_segment(a, c, d):
        touches.append(a)
    if o4 == 0 and on_segment(b, c, d):
        touches.append(b)
    if not touches:
        # General position but the straddle test failed: disjoint.
        if o1 != o2 and o3 != o4:
            return _proper_intersection_point(a, b, c, d)
        return None
    unique = sorted(set(touches))
    if len(unique) == 1:
        return unique[0]
    return (unique[0], unique[-1])


def _proper_intersection_point(a: Coord, b: Coord, c: Coord, d: Coord) -> Coord:
    rx, ry = b[0] - a[0], b[1] - a[1]
    sx, sy = d[0] - c[0], d[1] - c[1]
    denom = rx * sy - ry * sx
    if denom == 0.0:  # numerically parallel despite straddle: midpoint fallback
        return ((a[0] + b[0] + c[0] + d[0]) / 4.0, (a[1] + b[1] + c[1] + d[1]) / 4.0)
    t = ((c[0] - a[0]) * sy - (c[1] - a[1]) * sx) / denom
    t = min(1.0, max(0.0, t))
    return (a[0] + t * rx, a[1] + t * ry)


def _collinear_overlap(
    a: Coord, b: Coord, c: Coord, d: Coord
) -> SegmentIntersection:
    # project on the dominant axis of ab
    if abs(b[0] - a[0]) >= abs(b[1] - a[1]):
        key = lambda p: p[0]  # noqa: E731
    else:
        key = lambda p: p[1]  # noqa: E731
    lo1, hi1 = sorted((a, b), key=key)
    lo2, hi2 = sorted((c, d), key=key)
    lo = max(lo1, lo2, key=key)
    hi = min(hi1, hi2, key=key)
    if key(lo) > key(hi):
        return None
    if lo == hi or key(lo) == key(hi):
        return lo
    return (lo, hi)


def segments_properly_cross(a: Coord, b: Coord, c: Coord, d: Coord) -> bool:
    """True iff ab and cd cross at a single interior point of both."""
    o1 = orientation(a, b, c)
    o2 = orientation(a, b, d)
    o3 = orientation(c, d, a)
    o4 = orientation(c, d, b)
    return o1 != 0 and o2 != 0 and o3 != 0 and o4 != 0 and o1 != o2 and o3 != o4


def point_segment_distance(p: Coord, a: Coord, b: Coord) -> float:
    """Distance from point ``p`` to the closed segment ``ab``."""
    dx, dy = b[0] - a[0], b[1] - a[1]
    seg2 = dx * dx + dy * dy
    if seg2 == 0.0:
        return math.hypot(p[0] - a[0], p[1] - a[1])
    t = ((p[0] - a[0]) * dx + (p[1] - a[1]) * dy) / seg2
    t = max(0.0, min(1.0, t))
    return math.hypot(p[0] - (a[0] + t * dx), p[1] - (a[1] + t * dy))


def segment_segment_distance(a: Coord, b: Coord, c: Coord, d: Coord) -> float:
    """Distance between closed segments (0 when they intersect)."""
    if segment_intersection(a, b, c, d) is not None:
        return 0.0
    return min(
        point_segment_distance(a, c, d),
        point_segment_distance(b, c, d),
        point_segment_distance(c, a, b),
        point_segment_distance(d, a, b),
    )
