"""Computational geometry: predicates, DE-9IM, overlay, analysis operations.

This package implements from scratch everything the benchmark's SQL layer
exposes as ``ST_*`` functions. The split across modules mirrors how the
routines layer on each other:

- ``predicates``  — orientation / segment intersection primitives
- ``location``    — interior/boundary/exterior point location
- ``validation``  — ``ST_IsValid`` / ``ST_IsSimple``
- ``de9im``       — the full DE-9IM matrix and every named predicate
- ``clipping``    — areal boolean operations (segment arrangement clipper)
- ``overlay``     — public intersection/union/difference/sym_difference
- ``buffer``      — ``ST_Buffer`` via capsule unions
- ``convexhull``  — Andrew monotone chain
- ``distance``    — ``ST_Distance`` / ``ST_DWithin``
- ``measures``    — area/length/centroid/point-on-surface
- ``simplify``    — Douglas-Peucker
"""

from repro.algorithms.buffer import buffer, circle, segment_capsule
from repro.algorithms.convexhull import convex_hull, convex_hull_coords
from repro.algorithms.de9im import (
    DE9IM,
    contains,
    covered_by,
    covers,
    crosses,
    disjoint,
    equals,
    intersects,
    overlaps,
    relate,
    relate_pattern,
    touches,
    within,
)
from repro.algorithms.distance import distance, dwithin
from repro.algorithms.location import Location, locate
from repro.algorithms.measures import (
    area,
    centroid,
    dimension,
    length,
    num_points,
    perimeter,
    point_on_surface,
)
from repro.algorithms.overlay import (
    difference,
    intersection,
    sym_difference,
    union,
    union_all,
)
from repro.algorithms.simplify import simplify, simplify_coords
from repro.algorithms.validation import is_simple, is_valid

__all__ = [
    "DE9IM",
    "Location",
    "area",
    "buffer",
    "centroid",
    "circle",
    "contains",
    "convex_hull",
    "convex_hull_coords",
    "covered_by",
    "covers",
    "crosses",
    "difference",
    "dimension",
    "disjoint",
    "distance",
    "dwithin",
    "equals",
    "intersection",
    "intersects",
    "is_simple",
    "is_valid",
    "length",
    "locate",
    "num_points",
    "overlaps",
    "perimeter",
    "point_on_surface",
    "relate",
    "relate_pattern",
    "segment_capsule",
    "simplify",
    "simplify_coords",
    "sym_difference",
    "touches",
    "union",
    "union_all",
    "within",
]
