"""Douglas-Peucker line simplification (``ST_Simplify``).

Used by the map search-and-browsing macro scenario: lower zoom levels
request simplified geometry, exactly as a tile-rendering client would.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.algorithms.predicates import point_segment_distance
from repro.geometry.base import Coord, Geometry
from repro.geometry.collection import GeometryCollection
from repro.geometry.linestring import LineString, MultiLineString
from repro.geometry.point import MultiPoint, Point
from repro.geometry.polygon import MultiPolygon, Polygon


def simplify_coords(coords: Sequence[Coord], tolerance: float) -> List[Coord]:
    """Douglas-Peucker on an open coordinate chain."""
    if len(coords) <= 2:
        return list(coords)
    keep = [False] * len(coords)
    keep[0] = keep[-1] = True
    stack: List[Tuple[int, int]] = [(0, len(coords) - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        worst_d = -1.0
        worst_i = -1
        a, b = coords[lo], coords[hi]
        for i in range(lo + 1, hi):
            d = point_segment_distance(coords[i], a, b)
            if d > worst_d:
                worst_d = d
                worst_i = i
        if worst_d > tolerance:
            keep[worst_i] = True
            stack.append((lo, worst_i))
            stack.append((worst_i, hi))
    return [c for c, k in zip(coords, keep) if k]


def _simplify_ring(ring: Sequence[Coord], tolerance: float) -> List[Coord]:
    """Simplify a closed ring, guarding against collapse below a triangle."""
    slim = simplify_coords(ring, tolerance)
    if len(slim) < 4:
        return list(ring)  # refuse to collapse the ring
    return slim


def simplify(geom: Geometry, tolerance: float) -> Geometry:
    """Topology-unaware simplification, preserving geometry type."""
    if tolerance < 0.0:
        raise ValueError("tolerance must be non-negative")
    if isinstance(geom, (Point, MultiPoint)):
        return geom
    if isinstance(geom, LineString):
        slim = simplify_coords(geom.coords, tolerance)
        if len(slim) < 2 or all(c == slim[0] for c in slim[1:]):
            return geom
        return LineString(slim)
    if isinstance(geom, MultiLineString):
        return MultiLineString([simplify(line, tolerance) for line in geom.lines])
    if isinstance(geom, Polygon):
        return Polygon(
            _simplify_ring(geom.shell, tolerance),
            [_simplify_ring(h, tolerance) for h in geom.holes],
        )
    if isinstance(geom, MultiPolygon):
        return MultiPolygon([simplify(p, tolerance) for p in geom.polygons])
    if isinstance(geom, GeometryCollection):
        return GeometryCollection([simplify(m, tolerance) for m in geom.geoms])
    raise TypeError(f"cannot simplify {type(geom).__name__}")
