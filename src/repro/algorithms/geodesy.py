"""Geodetic (spherical) measurements.

The paper highlights *true geodetic support* as one of the axes on which
the benchmarked DBMSes differ: planar engines compute on raw lon/lat as
if it were Cartesian, geodetic engines measure on the sphere. This module
provides the spherical implementations (haversine distances, l'Huilier
spherical polygon areas, destination points) that back the
``ST_DistanceSphere`` / ``ST_LengthSphere`` / ``ST_AreaSphere`` SQL
functions — supported by the exact engines, absent from ``bluestem``,
mirroring the MySQL-era gap.

Coordinates are interpreted as (longitude, latitude) in degrees.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.base import Coord, Geometry
from repro.geometry.collection import GeometryCollection
from repro.geometry.linestring import LineString, MultiLineString
from repro.geometry.point import MultiPoint, Point
from repro.geometry.polygon import MultiPolygon, Polygon

#: mean Earth radius in metres (IUGG)
EARTH_RADIUS_M = 6_371_008.8


def _check_lonlat(coord: Coord) -> None:
    lon, lat = coord
    if not -180.0 <= lon <= 180.0 or not -90.0 <= lat <= 90.0:
        raise GeometryError(
            f"({lon}, {lat}) is not a (longitude, latitude) coordinate"
        )


def haversine_m(a: Coord, b: Coord, radius: float = EARTH_RADIUS_M) -> float:
    """Great-circle distance in metres between two lon/lat coordinates."""
    _check_lonlat(a)
    _check_lonlat(b)
    lon1, lat1 = map(math.radians, a)
    lon2, lat2 = map(math.radians, b)
    d_lat = lat2 - lat1
    d_lon = lon2 - lon1
    h = (
        math.sin(d_lat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(d_lon / 2.0) ** 2
    )
    return 2.0 * radius * math.asin(min(1.0, math.sqrt(h)))


def destination(
    start: Coord, bearing_deg: float, distance_m: float,
    radius: float = EARTH_RADIUS_M,
) -> Coord:
    """The lon/lat reached from ``start`` on ``bearing`` after ``distance``."""
    _check_lonlat(start)
    lon1, lat1 = map(math.radians, start)
    bearing = math.radians(bearing_deg)
    angular = distance_m / radius
    lat2 = math.asin(
        math.sin(lat1) * math.cos(angular)
        + math.cos(lat1) * math.sin(angular) * math.cos(bearing)
    )
    lon2 = lon1 + math.atan2(
        math.sin(bearing) * math.sin(angular) * math.cos(lat1),
        math.cos(angular) - math.sin(lat1) * math.sin(lat2),
    )
    lon2 = (lon2 + 3.0 * math.pi) % (2.0 * math.pi) - math.pi
    return (math.degrees(lon2), math.degrees(lat2))


def sphere_length_m(geom: Geometry, radius: float = EARTH_RADIUS_M) -> float:
    """Great-circle length of a lineal geometry in metres."""
    if isinstance(geom, (Point, MultiPoint)):
        return 0.0
    if isinstance(geom, (LineString, MultiLineString, Polygon, MultiPolygon)):
        return sum(
            haversine_m(a, b, radius) for a, b in geom.segments()
        )
    if isinstance(geom, GeometryCollection):
        return sum(sphere_length_m(m, radius) for m in geom.geoms)
    raise TypeError(f"cannot measure {type(geom).__name__} on the sphere")


def _ring_sphere_area(
    ring: Sequence[Coord], radius: float
) -> float:
    """Unsigned spherical area of a ring via the spherical excess
    (l'Huilier / Girard through the summed spherical polygon angles,
    computed with the stable "signed spherical excess" formulation)."""
    if len(ring) < 4:
        return 0.0
    total = 0.0
    # sum of the per-edge spherical excess contributions (Todhunter)
    for (lon1, lat1), (lon2, lat2) in zip(ring, ring[1:]):
        phi1 = math.radians(lat1)
        phi2 = math.radians(lat2)
        d_lon = math.radians(lon2 - lon1)
        total += 2.0 * math.atan2(
            math.tan(d_lon / 2.0) * (math.tan(phi1 / 2.0) + math.tan(phi2 / 2.0)),
            1.0 + math.tan(phi1 / 2.0) * math.tan(phi2 / 2.0),
        )
    return abs(total) * radius * radius


def sphere_area_m2(geom: Geometry, radius: float = EARTH_RADIUS_M) -> float:
    """Spherical area of an areal geometry in square metres."""
    if isinstance(geom, Polygon):
        area = _ring_sphere_area(geom.shell, radius)
        for hole in geom.holes:
            area -= _ring_sphere_area(hole, radius)
        return area
    if isinstance(geom, MultiPolygon):
        return sum(sphere_area_m2(p, radius) for p in geom.polygons)
    if isinstance(geom, GeometryCollection):
        return sum(
            sphere_area_m2(m, radius)
            for m in geom.geoms
            if isinstance(m, (Polygon, MultiPolygon))
        )
    return 0.0


def sphere_distance_m(
    a: Geometry, b: Geometry, radius: float = EARTH_RADIUS_M
) -> float:
    """Great-circle distance between two geometries.

    Computed over vertex/segment samples: exact for point operands, a
    tight approximation for short segments (the benchmark's road/landmark
    scale), which matches how 2011-era engines implemented it.
    """
    best = math.inf
    coords_a = list(a.coords_iter())
    coords_b = list(b.coords_iter())
    for pa in coords_a:
        for pb in coords_b:
            d = haversine_m(pa, pb, radius)
            if d < best:
                best = d
                if best == 0.0:
                    return 0.0
    return best
