"""DE-9IM: the Dimensionally Extended 9-Intersection Model.

This module is the heart of the reproduction — the paper's topological
micro benchmark is defined directly over DE-9IM relations, so every query
in experiment J-T1/J-F1 bottoms out in :func:`relate` (or its fast-path
friends) below.

The matrix is computed by *split-and-sample*: both operands are decomposed
into tagged features (isolated points carrying their interior/boundary role,
segments tagged as curve-interior or areal-boundary). Segments of each
operand are split at every intersection with the other operand, after which
each split piece lies entirely within a single interior/boundary/exterior
class of the other geometry, so classifying one midpoint classifies the
piece. Dimension-2 entries follow from an open-set limit argument: an
areal boundary piece whose midpoint sits in the other operand's interior
proves interior/interior AND exterior/interior intersections of dimension 2
(the two open sides of the piece converge to it). The only place a numeric
epsilon appears is the shared-boundary case (piece collinear with the other
polygon's boundary), where a perpendicular side probe decides whether the
interiors lie on the same side.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.algorithms.location import Location, locate
from repro.algorithms.predicates import segment_intersection
from repro.geometry.base import Coord, Envelope, Geometry
from repro.geometry.collection import GeometryCollection
from repro.geometry.linestring import LineString, MultiLineString
from repro.geometry.point import MultiPoint, Point
from repro.geometry.polygon import MultiPolygon, Polygon

_INT, _BND, _EXT = Location.INTERIOR, Location.BOUNDARY, Location.EXTERIOR

_DIM_CHARS = {-1: "F", 0: "0", 1: "1", 2: "2"}


class DE9IM:
    """An immutable 9-intersection matrix with pattern matching."""

    __slots__ = ("_cells",)

    def __init__(self, cells: Sequence[int]):
        if len(cells) != 9:
            raise ValueError("DE-9IM needs exactly nine cells")
        self._cells = tuple(cells)

    @classmethod
    def from_string(cls, text: str) -> "DE9IM":
        mapping = {"F": -1, "0": 0, "1": 1, "2": 2}
        try:
            return cls([mapping[ch] for ch in text.upper()])
        except KeyError as exc:
            raise ValueError(f"bad DE-9IM character {exc.args[0]!r}")

    def cell(self, loc_a: Location, loc_b: Location) -> int:
        return self._cells[int(loc_a) * 3 + int(loc_b)]

    def transpose(self) -> "DE9IM":
        c = self._cells
        return DE9IM([c[0], c[3], c[6], c[1], c[4], c[7], c[2], c[5], c[8]])

    def matches(self, pattern: str) -> bool:
        """Match against a nine-character pattern of ``T F * 0 1 2``."""
        if len(pattern) != 9:
            raise ValueError("DE-9IM pattern must have nine characters")
        for value, want in zip(self._cells, pattern.upper()):
            if want == "*":
                continue
            if want == "T":
                if value < 0:
                    return False
            elif want == "F":
                if value >= 0:
                    return False
            else:
                if value != int(want):
                    return False
        return True

    def __str__(self) -> str:
        return "".join(_DIM_CHARS[c] for c in self._cells)

    def __repr__(self) -> str:
        return f"DE9IM({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DE9IM):
            return self._cells == other._cells
        if isinstance(other, str):
            return str(self) == other.upper()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._cells)


class _Matrix:
    """Mutable accumulator for intersection-dimension evidence."""

    __slots__ = ("cells",)

    def __init__(self) -> None:
        self.cells = [-1] * 9

    def bump(self, loc_a: Location, loc_b: Location, dim: int) -> None:
        idx = int(loc_a) * 3 + int(loc_b)
        if dim > self.cells[idx]:
            self.cells[idx] = dim

    def freeze(self) -> DE9IM:
        return DE9IM(self.cells)


Segment = Tuple[Coord, Coord]


class _FeatureSet:
    """Flattened, role-tagged features of one operand."""

    __slots__ = (
        "geom", "points", "segments", "max_dim", "has_area",
        "areal_members", "interior_reps",
    )

    def __init__(self, geom: Geometry):
        self.geom = geom
        self.points: List[Tuple[Coord, Location]] = []
        # (start, end, role, interior_is_left) — role is the class the
        # segment's relative interior belongs to in its own geometry.
        self.segments: List[Tuple[Coord, Coord, Location, bool]] = []
        self.areal_members: List[Geometry] = []
        self.interior_reps: List[Coord] = []
        self._collect(geom)
        self.max_dim = geom.dimension
        self.has_area = bool(self.areal_members)

    def _collect(self, geom: Geometry) -> None:
        if isinstance(geom, Point):
            self.points.append((geom.coord, _INT))
        elif isinstance(geom, MultiPoint):
            for p in geom.points:
                self.points.append((p.coord, _INT))
        elif isinstance(geom, LineString):
            self._collect_line(geom, geom.boundary_points())
        elif isinstance(geom, MultiLineString):
            boundary = {p.coord for p in geom.boundary_points()}
            for line in geom.lines:
                self._collect_line(line, None, boundary)
        elif isinstance(geom, Polygon):
            self._collect_polygon(geom)
        elif isinstance(geom, MultiPolygon):
            for poly in geom.polygons:
                self._collect_polygon(poly)
        elif isinstance(geom, GeometryCollection):
            for member in geom.geoms:
                self._collect(member)
        else:
            raise TypeError(f"cannot relate {type(geom).__name__}")

    def _collect_line(self, line, boundary_pts, boundary_set=None) -> None:
        if boundary_set is None:
            boundary_set = {p.coord for p in boundary_pts}
        for coord in (line.coords[0], line.coords[-1]):
            role = _BND if coord in boundary_set else _INT
            self.points.append((coord, role))
        for coord in line.coords[1:-1]:
            self.points.append((coord, _INT))
        for a, b in line.segments():
            self.segments.append((a, b, _INT, False))

    def _collect_polygon(self, poly: Polygon) -> None:
        self.areal_members.append(poly)
        from repro.algorithms.measures import point_on_surface

        self.interior_reps.append(point_on_surface(poly).coord)
        for ring in poly.rings():
            for coord in ring[:-1]:
                self.points.append((coord, _BND))
            for a, b in zip(ring, ring[1:]):
                if a != b:
                    # shells are CCW and holes CW, so the polygon interior is
                    # always to the left of the directed ring segment
                    self.segments.append((a, b, _BND, True))

    def locate_areal(self, p: Coord) -> Location:
        """Locate against the areal members only (used by rep-point evidence)."""
        best = _EXT
        for member in self.areal_members:
            where = locate(p, member)
            if where is _INT:
                return _INT
            if where is _BND:
                best = _BND
        return best


def _features_of(geom: Geometry) -> "_FeatureSet":
    """Memoised feature decomposition (prepared-geometry optimisation)."""
    cached = geom._features
    if cached is None:
        cached = _FeatureSet(geom)
        geom._features = cached
    return cached


def _boundary_dim(feats: _FeatureSet) -> int:
    """Dimension of the operand's boundary (-1 when empty)."""
    if feats.has_area:
        return 1
    if any(role is _BND for _, role in feats.points):
        return 0
    return -1


def _segment_grid(
    segments: Sequence[Tuple[Coord, Coord, Location, bool]], cell: float
) -> Dict[Tuple[int, int], List[int]]:
    grid: Dict[Tuple[int, int], List[int]] = {}
    for idx, (a, b, _role, _left) in enumerate(segments):
        x0, x1 = sorted((a[0], b[0]))
        y0, y1 = sorted((a[1], b[1]))
        for gx in range(int(math.floor(x0 / cell)), int(math.floor(x1 / cell)) + 1):
            for gy in range(
                int(math.floor(y0 / cell)), int(math.floor(y1 / cell)) + 1
            ):
                grid.setdefault((gx, gy), []).append(idx)
    return grid


def _candidate_pairs(
    segs_a: Sequence[Tuple[Coord, Coord, Location, bool]],
    segs_b: Sequence[Tuple[Coord, Coord, Location, bool]],
) -> Iterable[Tuple[int, int]]:
    """Index-accelerated candidate segment pairs (envelope overlap)."""
    if len(segs_a) * len(segs_b) <= 4096:
        for i in range(len(segs_a)):
            for j in range(len(segs_b)):
                yield (i, j)
        return
    # bucket the larger side on a uniform grid sized by its average extent
    spans = []
    for a, b, _r, _l in segs_b:
        spans.append(max(abs(b[0] - a[0]), abs(b[1] - a[1])))
    cell = max(sum(spans) / len(spans), 1e-9) * 2.0
    grid = _segment_grid(segs_b, cell)
    seen_pair = set()
    for i, (a, b, _r, _l) in enumerate(segs_a):
        x0, x1 = sorted((a[0], b[0]))
        y0, y1 = sorted((a[1], b[1]))
        for gx in range(int(math.floor(x0 / cell)), int(math.floor(x1 / cell)) + 1):
            for gy in range(
                int(math.floor(y0 / cell)), int(math.floor(y1 / cell)) + 1
            ):
                for j in grid.get((gx, gy), ()):
                    if (i, j) not in seen_pair:
                        seen_pair.add((i, j))
                        yield (i, j)


def _seg_point_param(a: Coord, b: Coord, p: Coord) -> float:
    """Parameter of ``p`` along segment ab (projection, for sorting splits)."""
    dx, dy = b[0] - a[0], b[1] - a[1]
    if abs(dx) >= abs(dy):
        return (p[0] - a[0]) / dx if dx else 0.0
    return (p[1] - a[1]) / dy if dy else 0.0


def _side_points(a: Coord, b: Coord, mid: Coord, eps: float) -> Tuple[Coord, Coord]:
    """Points offset perpendicular to ab at mid: (left, right)."""
    dx, dy = b[0] - a[0], b[1] - a[1]
    norm = math.hypot(dx, dy)
    ux, uy = -dy / norm, dx / norm  # left normal
    return (
        (mid[0] + eps * ux, mid[1] + eps * uy),
        (mid[0] - eps * ux, mid[1] - eps * uy),
    )


def _open_class(where: Location, feats: _FeatureSet) -> bool:
    """Is the located class an open 2-D set for this operand?"""
    if where is _EXT:
        return True
    return where is _INT and feats.max_dim == 2 and not _is_mixed(feats)


def _is_mixed(feats: _FeatureSet) -> bool:
    """Does the operand mix areal members with lower-dimensional ones?"""
    if not feats.has_area:
        return False
    return bool(feats.points and any(r is _INT for _, r in feats.points)) or any(
        role is _INT for _a, _b, role, _l in feats.segments
    )


def _disjoint_matrix(fa: _FeatureSet, fb: _FeatureSet) -> DE9IM:
    m = _Matrix()
    m.bump(_INT, _EXT, fa.max_dim)
    m.bump(_BND, _EXT, _boundary_dim(fa))
    m.bump(_EXT, _INT, fb.max_dim)
    m.bump(_EXT, _BND, _boundary_dim(fb))
    m.bump(_EXT, _EXT, 2)
    return m.freeze()


def relate(a: Geometry, b: Geometry) -> DE9IM:
    """Compute the full DE-9IM matrix of ``a`` against ``b``."""
    fa = _features_of(a)
    fb = _features_of(b)
    if a.is_empty or b.is_empty:
        m = _Matrix()
        m.bump(_EXT, _EXT, 2)
        if not a.is_empty:
            m.bump(_INT, _EXT, fa.max_dim)
            m.bump(_BND, _EXT, _boundary_dim(fa))
        if not b.is_empty:
            m.bump(_EXT, _INT, fb.max_dim)
            m.bump(_EXT, _BND, _boundary_dim(fb))
        return m.freeze()
    if not a.envelope.intersects(b.envelope):
        return _disjoint_matrix(fa, fb)

    m = _Matrix()
    m.bump(_EXT, _EXT, 2)
    # A 2-D interior can never be covered by a lower-dimensional operand.
    if fa.max_dim == 2 and fb.max_dim < 2:
        m.bump(_INT, _EXT, 2)
    if fb.max_dim == 2 and fa.max_dim < 2:
        m.bump(_EXT, _INT, 2)

    # --- 0-dimensional evidence: vertices and isolated points -------------
    for p, loc_a in fa.points:
        m.bump(loc_a, locate(p, b), 0)
    for p, loc_b in fb.points:
        m.bump(locate(p, a), loc_b, 0)

    # --- segment intersections: split points + 0-dim evidence -------------
    # Intersection points are classified *structurally*: a point produced
    # from segments i of A and j of B lies on both by construction, so its
    # location in each operand is the segment's own role (curve interior /
    # areal boundary) unless it coincides with a boundary vertex. Calling
    # ``locate`` here would be both slower and fragile — the computed
    # point carries eps*|coord| error that can defeat on-segment tests.
    boundary_a = {p for p, role in fa.points if role is _BND}
    boundary_b = {p for p, role in fb.points if role is _BND}
    splits_a: Dict[int, List[Coord]] = {}
    splits_b: Dict[int, List[Coord]] = {}
    for i, j in _candidate_pairs(fa.segments, fb.segments):
        sa = fa.segments[i]
        sb = fb.segments[j]
        hit = segment_intersection(sa[0], sa[1], sb[0], sb[1])
        if hit is None:
            continue
        if isinstance(hit, tuple) and hit and isinstance(hit[0], tuple):
            points = list(hit)
        else:
            points = [hit]  # type: ignore[list-item]
        for p in points:
            splits_a.setdefault(i, []).append(p)
            splits_b.setdefault(j, []).append(p)
            loc_a = _BND if p in boundary_a else sa[2]
            loc_b = _BND if p in boundary_b else sb[2]
            m.bump(loc_a, loc_b, 0)
    # isolated points of one operand can split the other's segments too
    for j, (c, d, _role, _left) in enumerate(fb.segments):
        for p, _loc in fa.points:
            if _between_env(p, c, d) and _on(p, c, d):
                splits_b.setdefault(j, []).append(p)
    for i, (c, d, _role, _left) in enumerate(fa.segments):
        for p, _loc in fb.points:
            if _between_env(p, c, d) and _on(p, c, d):
                splits_a.setdefault(i, []).append(p)

    # --- 1-dimensional evidence: classified split pieces -------------------
    _sample_pieces(m, fa, fb, splits_a, transposed=False)
    _sample_pieces(m, fb, fa, splits_b, transposed=True)

    # --- representative interior points of areal members -------------------
    for p in fa.interior_reps:
        where = locate(p, b)
        m.bump(_INT, where, 0)
        if where is _EXT:
            m.bump(_INT, _EXT, 2)
        elif where is _INT and fb.has_area and fb.locate_areal(p) is _INT:
            m.bump(_INT, _INT, 2)
    for p in fb.interior_reps:
        where = locate(p, a)
        m.bump(where, _INT, 0)
        if where is _EXT:
            m.bump(_EXT, _INT, 2)
        elif where is _INT and fa.has_area and fa.locate_areal(p) is _INT:
            m.bump(_INT, _INT, 2)

    return m.freeze()


def _on(p: Coord, c: Coord, d: Coord) -> bool:
    from repro.algorithms.predicates import on_segment

    return on_segment(p, c, d)


def _between_env(p: Coord, c: Coord, d: Coord) -> bool:
    return (
        min(c[0], d[0]) - 1e-9 <= p[0] <= max(c[0], d[0]) + 1e-9
        and min(c[1], d[1]) - 1e-9 <= p[1] <= max(c[1], d[1]) + 1e-9
    )


def _sample_pieces(
    m: _Matrix,
    fa: _FeatureSet,
    fb: _FeatureSet,
    splits: Dict[int, List[Coord]],
    transposed: bool,
) -> None:
    """Classify every split piece of ``fa``'s segments against ``fb``.

    When ``transposed`` the evidence is recorded with the roles swapped so
    the same routine serves both operands.
    """

    def bump(loc_a: Location, loc_b: Location, dim: int) -> None:
        if transposed:
            m.bump(loc_b, loc_a, dim)
        else:
            m.bump(loc_a, loc_b, dim)

    for idx, (a, b, role, interior_left) in enumerate(fa.segments):
        cut_params = [0.0, 1.0]
        for p in splits.get(idx, ()):
            t = _seg_point_param(a, b, p)
            if 0.0 < t < 1.0:
                cut_params.append(t)
        cut_params.sort()
        for t0, t1 in zip(cut_params, cut_params[1:]):
            if t1 - t0 <= 1e-12:
                continue
            tm = (t0 + t1) / 2.0
            mid = (a[0] + tm * (b[0] - a[0]), a[1] + tm * (b[1] - a[1]))
            where = locate(mid, fb.geom)
            bump(role, where, 1)
            if role is not _BND or not fa.has_area:
                continue
            # Areal boundary piece: its two open sides prove 2-D entries.
            if where is _INT and _open_class(_INT, fb):
                bump(_INT, _INT, 2)
                bump(_EXT, _INT, 2)
            elif where is _EXT:
                bump(_INT, _EXT, 2)
                bump(_EXT, _EXT, 2)
            elif where is _BND and fb.has_area:
                piece_len = math.hypot(b[0] - a[0], b[1] - a[1]) * (t1 - t0)
                eps = piece_len * 1e-3
                left, right = _side_points(a, b, mid, eps)
                loc_a_left = _INT if interior_left else _EXT
                loc_a_right = _EXT if interior_left else _INT
                for side, loc_a_side in ((left, loc_a_left), (right, loc_a_right)):
                    loc_b_side = fb.locate_areal(side)
                    if loc_b_side is not _BND:
                        bump(loc_a_side, loc_b_side, 2)


# ---------------------------------------------------------------------------
# named predicates
# ---------------------------------------------------------------------------


def relate_pattern(a: Geometry, b: Geometry, pattern: str) -> bool:
    """``ST_Relate(a, b, pattern)``."""
    return relate(a, b).matches(pattern)


def equals(a: Geometry, b: Geometry) -> bool:
    """Topological equality: same point set."""
    if a.is_empty or b.is_empty:
        return a.is_empty and b.is_empty
    if a.dimension != b.dimension:
        return False
    if a.envelope != b.envelope:
        return False
    return relate(a, b).matches("T*F**FFF*")


def disjoint(a: Geometry, b: Geometry) -> bool:
    if a.is_empty or b.is_empty:
        return True
    if not a.envelope.intersects(b.envelope):
        return True
    return relate(a, b).matches("FF*FF****")


def intersects(a: Geometry, b: Geometry) -> bool:
    """Fast-path intersects: envelope filter, then direct crossing search.

    This is by far the hottest predicate of the topological micro suite,
    so it avoids building the full matrix: any vertex membership or any
    segment intersection proves it; containment is checked by representative
    points both ways.
    """
    if a.is_empty or b.is_empty:
        return False
    if not a.envelope.intersects(b.envelope):
        return False
    fa = _features_of(a)
    fb = _features_of(b)
    env_b = b.envelope
    for p, _loc in fa.points:
        if env_b.contains_point(*p) and locate(p, b) is not _EXT:
            return True
    env_a = a.envelope
    for p, _loc in fb.points:
        if env_a.contains_point(*p) and locate(p, a) is not _EXT:
            return True
    for i, j in _candidate_pairs(fa.segments, fb.segments):
        sa = fa.segments[i]
        sb = fb.segments[j]
        if segment_intersection(sa[0], sa[1], sb[0], sb[1]) is not None:
            return True
    # no boundary contact: one operand may still contain the other
    if fa.has_area:
        p = next(fb.geom.coords_iter())
        if fa.locate_areal(p) is not _EXT:
            return True
    if fb.has_area:
        p = next(fa.geom.coords_iter())
        if fb.locate_areal(p) is not _EXT:
            return True
    return False


def touches(a: Geometry, b: Geometry) -> bool:
    """Boundaries meet, interiors do not."""
    if a.is_empty or b.is_empty:
        return False
    if a.dimension == 0 and b.dimension == 0:
        return False  # two points have empty boundaries: never touch
    if not a.envelope.intersects(b.envelope):
        return False
    matrix = relate(a, b)
    return (
        matrix.matches("FT*******")
        or matrix.matches("F**T*****")
        or matrix.matches("F***T****")
    )


def crosses(a: Geometry, b: Geometry) -> bool:
    if a.is_empty or b.is_empty:
        return False
    if not a.envelope.intersects(b.envelope):
        return False
    da, db = a.dimension, b.dimension
    if da == 1 and db == 1:
        return relate(a, b).matches("0********")
    if da < db:
        return relate(a, b).matches("T*T******")
    if da > db:
        return relate(a, b).matches("T*****T**")
    return False


def within(a: Geometry, b: Geometry) -> bool:
    if a.is_empty or b.is_empty:
        return False
    if not b.envelope.padded().contains(a.envelope):
        return False
    # dedicated puntal path: point-in-polygon is the hottest containment
    # query in the benchmark and needs no matrix machinery
    if isinstance(a, Point):
        return locate(a.coord, b) is _INT
    if isinstance(a, MultiPoint):
        wheres = [locate(p.coord, b) for p in a.points]
        return all(w is not _EXT for w in wheres) and any(
            w is _INT for w in wheres
        )
    return relate(a, b).matches("T*F**F***")


def contains(a: Geometry, b: Geometry) -> bool:
    return within(b, a)


def overlaps(a: Geometry, b: Geometry) -> bool:
    if a.is_empty or b.is_empty:
        return False
    da, db = a.dimension, b.dimension
    if da != db:
        return False
    if not a.envelope.intersects(b.envelope):
        return False
    if da == 1:
        return relate(a, b).matches("1*T***T**")
    return relate(a, b).matches("T*T***T**")


def covers(a: Geometry, b: Geometry) -> bool:
    if a.is_empty or b.is_empty:
        return False
    if not a.envelope.padded().contains(b.envelope):
        return False
    matrix = relate(a, b)
    return (
        matrix.matches("T*****FF*")
        or matrix.matches("*T****FF*")
        or matrix.matches("***T**FF*")
        or matrix.matches("****T*FF*")
    )


def covered_by(a: Geometry, b: Geometry) -> bool:
    return covers(b, a)
