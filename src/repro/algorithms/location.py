"""Point location: where does a point sit relative to a geometry?

DE-9IM is defined over the interior/boundary/exterior partition, so the
location primitives return one of the three :class:`Location` labels rather
than a bare boolean. Ring tests use a crossing-number walk with explicit
boundary detection (a point on an edge is BOUNDARY, never mis-counted).
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.algorithms.predicates import on_segment
from repro.geometry.base import Coord, Geometry
from repro.geometry.collection import GeometryCollection
from repro.geometry.linestring import LineString, MultiLineString
from repro.geometry.point import MultiPoint, Point
from repro.geometry.polygon import MultiPolygon, Polygon


class Location(enum.IntEnum):
    INTERIOR = 0
    BOUNDARY = 1
    EXTERIOR = 2


def locate_in_ring(p: Coord, ring: Sequence[Coord]) -> Location:
    """Locate ``p`` against a closed ring (interior = inside the ring)."""
    px, py = p
    inside = False
    for a, b in zip(ring, ring[1:]):
        if a == b:
            continue
        if on_segment(p, a, b):
            return Location.BOUNDARY
        ax, ay = a
        bx, by = b
        # Count crossings of the upward ray from p: half-open rule on y.
        if (ay > py) != (by > py):
            x_cross = ax + (py - ay) * (bx - ax) / (by - ay)
            if x_cross > px:
                inside = not inside
    return Location.INTERIOR if inside else Location.EXTERIOR


def locate_in_polygon(p: Coord, polygon: Polygon) -> Location:
    """Locate ``p`` against a polygon with holes."""
    # The envelope rejection must be tolerant: a point carrying overlay
    # rounding error can sit epsilon outside the exact envelope while the
    # ring walk below would classify it BOUNDARY. Only the walk decides.
    env = polygon.envelope
    pad = env.tolerance()
    px, py = p
    if (
        px < env.min_x - pad
        or px > env.max_x + pad
        or py < env.min_y - pad
        or py > env.max_y + pad
    ):
        return Location.EXTERIOR
    where = locate_in_ring(p, polygon.shell)
    if where is not Location.INTERIOR:
        return where
    for hole in polygon.holes:
        inner = locate_in_ring(p, hole)
        if inner is Location.BOUNDARY:
            return Location.BOUNDARY
        if inner is Location.INTERIOR:
            return Location.EXTERIOR
    return Location.INTERIOR


def locate_in_multipolygon(p: Coord, geom: MultiPolygon) -> Location:
    result = Location.EXTERIOR
    for polygon in geom.polygons:
        where = locate_in_polygon(p, polygon)
        if where is Location.INTERIOR:
            return Location.INTERIOR
        if where is Location.BOUNDARY:
            result = Location.BOUNDARY
    return result


def locate_on_line(p: Coord, line: LineString) -> Location:
    """Locate ``p`` against a linestring (interior = on the line, not an endpoint)."""
    if not line.envelope.expanded(1e-9).contains_point(*p):
        return Location.EXTERIOR
    if not line.is_closed and (p == line.coords[0] or p == line.coords[-1]):
        return Location.BOUNDARY
    for a, b in line.segments():
        if on_segment(p, a, b):
            return Location.INTERIOR
    return Location.EXTERIOR


def locate_on_multiline(p: Coord, geom: MultiLineString) -> Location:
    boundary = {pt.coord for pt in geom.boundary_points()}
    if p in boundary:
        return Location.BOUNDARY
    for line in geom.lines:
        for a, b in line.segments():
            if on_segment(p, a, b):
                return Location.INTERIOR
    return Location.EXTERIOR


def locate(p: Coord, geom: Geometry) -> Location:
    """Locate a coordinate against any geometry type."""
    if isinstance(geom, Point):
        return Location.INTERIOR if p == geom.coord else Location.EXTERIOR
    if isinstance(geom, MultiPoint):
        return (
            Location.INTERIOR
            if any(p == pt.coord for pt in geom.points)
            else Location.EXTERIOR
        )
    if isinstance(geom, LineString):
        return locate_on_line(p, geom)
    if isinstance(geom, MultiLineString):
        return locate_on_multiline(p, geom)
    if isinstance(geom, Polygon):
        return locate_in_polygon(p, geom)
    if isinstance(geom, MultiPolygon):
        return locate_in_multipolygon(p, geom)
    if isinstance(geom, GeometryCollection):
        best = Location.EXTERIOR
        for member in geom.geoms:
            where = locate(p, member)
            if where is Location.INTERIOR:
                return Location.INTERIOR
            if where is Location.BOUNDARY:
                best = Location.BOUNDARY
        return best
    raise TypeError(f"cannot locate against {type(geom).__name__}")
