"""Scalar measures and representative points: area, length, centroid,
point-on-surface — the ``ST_Area`` / ``ST_Length`` / ``ST_Centroid`` /
``ST_PointOnSurface`` family of the spatial-analysis micro benchmark.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.algorithms.location import Location, locate_in_polygon
from repro.errors import GeometryError
from repro.geometry.base import Geometry
from repro.geometry.collection import GeometryCollection
from repro.geometry.linestring import LineString, MultiLineString
from repro.geometry.point import MultiPoint, Point
from repro.geometry.polygon import MultiPolygon, Polygon, signed_ring_area


def area(geom: Geometry) -> float:
    """Planar area. Zero for points and curves; holes subtract."""
    if isinstance(geom, (Point, MultiPoint, LineString, MultiLineString)):
        return 0.0
    if isinstance(geom, Polygon):
        total = abs(signed_ring_area(geom.shell))
        for hole in geom.holes:
            total -= abs(signed_ring_area(hole))
        return total
    if isinstance(geom, MultiPolygon):
        return sum(area(p) for p in geom.polygons)
    if isinstance(geom, GeometryCollection):
        return sum(area(member) for member in geom.geoms)
    raise TypeError(f"cannot measure area of {type(geom).__name__}")


def length(geom: Geometry) -> float:
    """Curve length; for areal geometries, the perimeter (PostGIS semantics
    return 0 for ST_Length on polygons, but the micro benchmark issues
    ST_Length on line layers only, so we keep the more useful perimeter)."""
    if isinstance(geom, (Point, MultiPoint)):
        return 0.0
    if isinstance(geom, LineString):
        return sum(
            math.hypot(b[0] - a[0], b[1] - a[1]) for a, b in geom.segments()
        )
    if isinstance(geom, MultiLineString):
        return sum(length(line) for line in geom.lines)
    if isinstance(geom, (Polygon, MultiPolygon)):
        return sum(
            math.hypot(b[0] - a[0], b[1] - a[1]) for a, b in geom.segments()
        )
    if isinstance(geom, GeometryCollection):
        return sum(length(member) for member in geom.geoms)
    raise TypeError(f"cannot measure length of {type(geom).__name__}")


def perimeter(geom: Geometry) -> float:
    """Boundary length of areal geometries (``ST_Perimeter``)."""
    if isinstance(geom, (Polygon, MultiPolygon)):
        return length(geom)
    return 0.0


def _ring_centroid_terms(ring) -> Tuple[float, float, float]:
    """(signed area, weighted x, weighted y) shoelace terms for one ring."""
    a_sum = cx = cy = 0.0
    for (x0, y0), (x1, y1) in zip(ring, ring[1:]):
        cross = x0 * y1 - x1 * y0
        a_sum += cross
        cx += (x0 + x1) * cross
        cy += (y0 + y1) * cross
    return a_sum / 2.0, cx / 6.0, cy / 6.0


def centroid(geom: Geometry) -> Point:
    """Center of mass, weighted by the geometry's own dimension."""
    if isinstance(geom, Point):
        return Point(geom.x, geom.y)
    if isinstance(geom, MultiPoint):
        xs = [p.x for p in geom.points]
        ys = [p.y for p in geom.points]
        return Point(sum(xs) / len(xs), sum(ys) / len(ys))
    if isinstance(geom, (LineString, MultiLineString)):
        total = wx = wy = 0.0
        for (ax, ay), (bx, by) in geom.segments():
            seg = math.hypot(bx - ax, by - ay)
            total += seg
            wx += seg * (ax + bx) / 2.0
            wy += seg * (ay + by) / 2.0
        if total == 0.0:
            first = next(geom.coords_iter())
            return Point(*first)
        return Point(wx / total, wy / total)
    if isinstance(geom, (Polygon, MultiPolygon)):
        a_total = cx_total = cy_total = 0.0
        polys = geom.polygons if isinstance(geom, MultiPolygon) else (geom,)
        for poly in polys:
            a, cx, cy = _ring_centroid_terms(poly.shell)
            a, cx, cy = abs(a), math.copysign(1.0, a) * cx, math.copysign(1.0, a) * cy
            for hole in poly.holes:
                ha, hcx, hcy = _ring_centroid_terms(hole)
                a -= abs(ha)
                cx -= math.copysign(1.0, ha) * hcx
                cy -= math.copysign(1.0, ha) * hcy
            a_total += a
            cx_total += cx
            cy_total += cy
        if a_total == 0.0:
            env = geom.envelope
            return Point(*env.center)
        return Point(cx_total / a_total, cy_total / a_total)
    if isinstance(geom, GeometryCollection):
        if geom.is_empty:
            raise GeometryError("centroid of an empty geometry")
        top = geom.dimension
        members = [m for m in geom.geoms if m.dimension == top]
        if top == 2:
            weights = [area(m) for m in members]
        elif top == 1:
            weights = [length(m) for m in members]
        else:
            weights = [1.0] * len(members)
        centroids = [centroid(m) for m in members]
        w_total = sum(weights)
        if w_total == 0.0:
            return centroids[0]
        x = sum(w * c.x for w, c in zip(weights, centroids)) / w_total
        y = sum(w * c.y for w, c in zip(weights, centroids)) / w_total
        return Point(x, y)
    raise TypeError(f"cannot compute centroid of {type(geom).__name__}")


def point_on_surface(geom: Geometry) -> Point:
    """A point guaranteed to lie on/in the geometry (``ST_PointOnSurface``)."""
    if isinstance(geom, Point):
        return Point(geom.x, geom.y)
    if isinstance(geom, MultiPoint):
        return Point(*geom.points[0].coord)
    if isinstance(geom, LineString):
        return geom.interpolate(0.5)
    if isinstance(geom, MultiLineString):
        longest = max(geom.lines, key=length)
        return longest.interpolate(0.5)
    if isinstance(geom, Polygon):
        return _polygon_interior_point(geom)
    if isinstance(geom, MultiPolygon):
        largest = max(geom.polygons, key=area)
        return _polygon_interior_point(largest)
    if isinstance(geom, GeometryCollection):
        if geom.is_empty:
            raise GeometryError("point_on_surface of an empty geometry")
        top = geom.dimension
        for member in geom.geoms:
            if member.dimension == top:
                return point_on_surface(member)
    raise TypeError(f"cannot compute point_on_surface of {type(geom).__name__}")


def _polygon_interior_point(poly: Polygon) -> Point:
    """Scanline midpoint strategy: cut the polygon at mid-height and take the
    midpoint of the widest interior span; falls back to centroid / vertex fan."""
    c = centroid(poly)
    if locate_in_polygon((c.x, c.y), poly) is Location.INTERIOR:
        return c
    env = poly.envelope
    # perturb the scan height away from vertex y-values to dodge degeneracies
    y = (env.min_y + env.max_y) / 2.0 + (env.max_y - env.min_y) * 1.0e-7
    crossings = []
    for (ax, ay), (bx, by) in poly.segments():
        if (ay > y) != (by > y):
            crossings.append(ax + (y - ay) * (bx - ax) / (by - ay))
    crossings.sort()
    best: Tuple[float, float] = (0.0, env.center[0])
    for left, right in zip(crossings[::2], crossings[1::2]):
        if right - left > best[0]:
            best = (right - left, (left + right) / 2.0)
    candidate = (best[1], y)
    if locate_in_polygon(candidate, poly) is Location.INTERIOR:
        return Point(*candidate)
    # last resort: probe midpoints of vertex fans
    shell = poly.shell
    for i in range(1, len(shell) - 1):
        probe = (
            (shell[0][0] + shell[i][0] + shell[i + 1][0]) / 3.0,
            (shell[0][1] + shell[i][1] + shell[i + 1][1]) / 3.0,
        )
        if locate_in_polygon(probe, poly) is Location.INTERIOR:
            return Point(*probe)
    raise GeometryError("could not find an interior point")


def num_points(geom: Geometry) -> int:
    """Total vertex count (``ST_NPoints``)."""
    return geom.num_points


def dimension(geom: Geometry) -> int:
    """Topological dimension (``ST_Dimension``)."""
    return geom.dimension
