"""Areal boolean operations by segment arrangement and face stitching.

The classic clipper pipeline, implemented over this library's own
primitives:

1. split both operands' boundary segments at every mutual intersection,
   so each resulting *piece* lies entirely within one
   interior/boundary/exterior class of the other polygon;
2. classify each piece's two open sides against both operands (the piece's
   own polygon interior is always to its left — rings are stored shell-CCW,
   hole-CW — and the other polygon's class comes from the piece midpoint,
   with coincident-edge orientation resolving the shared-boundary case);
3. keep exactly the pieces where the boolean result differs across the
   piece, oriented result-interior-on-the-left;
4. stitch kept pieces into rings by rotational edge pairing, then assign
   CW rings as holes of the smallest containing CCW shell.

This trades the raw speed of a sweep-line clipper for transparency: every
step reuses predicates that are independently unit-tested, which is the
right trade for a benchmark whose *answers* must be trustworthy.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.location import Location, locate
from repro.algorithms.measures import area as geom_area
from repro.algorithms.predicates import segment_intersection
from repro.errors import TopologyError
from repro.geometry.base import Coord, Geometry
from repro.geometry.polygon import MultiPolygon, Polygon, signed_ring_area

_INT, _BND, _EXT = Location.INTERIOR, Location.BOUNDARY, Location.EXTERIOR

_KEY_DECIMALS = 9

BoolOp = Callable[[bool, bool], bool]

OPS: Dict[str, BoolOp] = {
    "intersection": lambda a, b: a and b,
    "union": lambda a, b: a or b,
    "difference": lambda a, b: a and not b,
    "sym_difference": lambda a, b: a != b,
}


def _key(p: Coord) -> Tuple[float, float]:
    return (round(p[0], _KEY_DECIMALS), round(p[1], _KEY_DECIMALS))


def _edge_key(a: Coord, b: Coord) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    ka, kb = _key(a), _key(b)
    return (ka, kb) if ka <= kb else (kb, ka)


class _Piece:
    """A directed boundary fragment; owner interior is on its left."""

    __slots__ = ("start", "end", "owner", "mid")

    def __init__(self, start: Coord, end: Coord, owner: int):
        self.start = start
        self.end = end
        self.owner = owner  # 0 = A, 1 = B
        self.mid = ((start[0] + end[0]) / 2.0, (start[1] + end[1]) / 2.0)


def _boundary_segments(geom: Geometry) -> List[Tuple[Coord, Coord]]:
    if isinstance(geom, Polygon):
        polys: Sequence[Polygon] = (geom,)
    elif isinstance(geom, MultiPolygon):
        polys = geom.polygons
    else:
        raise TypeError(
            f"areal overlay requires polygons, got {type(geom).__name__}"
        )
    segments: List[Tuple[Coord, Coord]] = []
    for poly in polys:
        for ring in poly.rings():
            for a, b in zip(ring, ring[1:]):
                if a != b:
                    segments.append((a, b))
    return segments


def _split_segments(
    segs_a: List[Tuple[Coord, Coord]], segs_b: List[Tuple[Coord, Coord]]
) -> Tuple[List[_Piece], List[_Piece], List[Coord]]:
    """Split both segment sets at mutual intersections; also return the
    intersection points themselves (used for 0-dim intersection output)."""
    splits_a: Dict[int, List[Coord]] = {}
    splits_b: Dict[int, List[Coord]] = {}
    crossing_points: List[Coord] = []
    index = _GridIndex(segs_b)
    for i, (a, b) in enumerate(segs_a):
        for j in index.candidates(a, b):
            c, d = segs_b[j]
            hit = segment_intersection(a, b, c, d)
            if hit is None:
                continue
            if isinstance(hit, tuple) and hit and isinstance(hit[0], tuple):
                points = list(hit)
            else:
                points = [hit]  # type: ignore[list-item]
            for p in points:
                splits_a.setdefault(i, []).append(p)
                splits_b.setdefault(j, []).append(p)
                crossing_points.append(p)
    pieces_a = _make_pieces(segs_a, splits_a, owner=0)
    pieces_b = _make_pieces(segs_b, splits_b, owner=1)
    return pieces_a, pieces_b, crossing_points


class _GridIndex:
    """Uniform-grid candidate filter over one segment set."""

    __slots__ = ("cell", "grid", "count")

    def __init__(self, segments: Sequence[Tuple[Coord, Coord]]):
        self.count = len(segments)
        spans = [
            max(abs(b[0] - a[0]), abs(b[1] - a[1]), 1e-12) for a, b in segments
        ]
        self.cell = max(sum(spans) / max(len(spans), 1), 1e-9) * 2.0
        self.grid: Dict[Tuple[int, int], List[int]] = {}
        for idx, (a, b) in enumerate(segments):
            for cell in self._cells(a, b):
                self.grid.setdefault(cell, []).append(idx)

    def _cells(self, a: Coord, b: Coord):
        x0, x1 = sorted((a[0], b[0]))
        y0, y1 = sorted((a[1], b[1]))
        c = self.cell
        for gx in range(int(math.floor(x0 / c)), int(math.floor(x1 / c)) + 1):
            for gy in range(int(math.floor(y0 / c)), int(math.floor(y1 / c)) + 1):
                yield (gx, gy)

    def candidates(self, a: Coord, b: Coord):
        seen = set()
        for cell in self._cells(a, b):
            for idx in self.grid.get(cell, ()):
                if idx not in seen:
                    seen.add(idx)
                    yield idx


def _make_pieces(
    segments: List[Tuple[Coord, Coord]],
    splits: Dict[int, List[Coord]],
    owner: int,
) -> List[_Piece]:
    pieces: List[_Piece] = []
    for idx, (a, b) in enumerate(segments):
        cuts = splits.get(idx)
        if not cuts:
            pieces.append(_Piece(a, b, owner))
            continue
        dx, dy = b[0] - a[0], b[1] - a[1]
        use_x = abs(dx) >= abs(dy)

        def param(p: Coord) -> float:
            return (p[0] - a[0]) / dx if use_x else (p[1] - a[1]) / dy

        ordered = sorted(
            {(_clamp01(param(p)), _key(p)): p for p in cuts}.items()
        )
        waypoints: List[Coord] = [a]
        for (t, _k), p in ordered:
            if 0.0 < t < 1.0 and _key(p) != _key(waypoints[-1]):
                waypoints.append(p)
        if _key(b) != _key(waypoints[-1]):
            waypoints.append(b)
        for s, e in zip(waypoints, waypoints[1:]):
            pieces.append(_Piece(s, e, owner))
    return pieces


def _clamp01(t: float) -> float:
    return 0.0 if t < 0.0 else (1.0 if t > 1.0 else t)


def overlay(
    a: Geometry, b: Geometry, op: str
) -> Tuple[List[Tuple[Tuple[Coord, ...], List[Tuple[Coord, ...]]]],
           List[Tuple[Coord, Coord]], List[Coord]]:
    """Low-level areal overlay.

    Returns ``(polygons, line_pieces, touch_points)`` where polygons is a
    list of (shell, holes) coordinate rings. Line pieces and touch points
    are only populated for ``op='intersection'`` (they describe the
    lower-dimensional portion of the intersection, which ``ST_Intersection``
    must report when polygons share edges or corners without overlapping).
    """
    if op not in OPS:
        raise ValueError(f"unknown overlay op {op!r}")
    boolean = OPS[op]
    segs_a = _boundary_segments(a)
    segs_b = _boundary_segments(b)
    pieces_a, pieces_b, crossings = _split_segments(segs_a, segs_b)

    coincident: Dict[tuple, _Piece] = {}
    for piece in pieces_a:
        coincident[_edge_key(piece.start, piece.end)] = piece

    kept: List[Tuple[Coord, Coord]] = []
    shared_line_pieces: List[Tuple[Coord, Coord]] = []

    for piece in pieces_a:
        where = locate(piece.mid, b)
        if where is _INT:
            left_b = right_b = True
        elif where is _EXT:
            left_b = right_b = False
        else:
            twin = _find_twin(piece, pieces_b)
            if twin is None:
                left_b, right_b = _probe_sides(piece, b)
            else:
                same_dir = _same_direction(piece, twin)
                # twin's interior (B's) is on the twin's left
                left_b = same_dir  # B-interior on A-piece's left?
                right_b = not same_dir
        left_in = boolean(True, left_b)
        right_in = boolean(False, right_b)
        if left_in != right_in:
            kept.append(
                (piece.start, piece.end) if left_in else (piece.end, piece.start)
            )
        elif (
            op == "intersection"
            and not left_in
            and where is _BND
        ):
            shared_line_pieces.append((piece.start, piece.end))

    twin_keys = {
        _edge_key(p.start, p.end) for p in pieces_a
    }
    for piece in pieces_b:
        if _edge_key(piece.start, piece.end) in twin_keys:
            continue  # handled (or deliberately dropped) via the A twin
        where = locate(piece.mid, a)
        if where is _INT:
            left_a = right_a = True
        elif where is _EXT:
            left_a = right_a = False
        else:
            left_a, right_a = _probe_sides(piece, a)
        left_in = boolean(left_a, True)
        right_in = boolean(right_a, False)
        if left_in != right_in:
            kept.append(
                (piece.start, piece.end) if left_in else (piece.end, piece.start)
            )

    polygons = _stitch(kept)

    touch_points: List[Coord] = []
    if op == "intersection":
        line_keys = {_edge_key(s, e) for s, e in shared_line_pieces}
        kept_nodes = set()
        for shell, holes in polygons:
            for ring in [shell] + holes:
                kept_nodes.update(_key(p) for p in ring)
        line_nodes = set()
        for s, e in shared_line_pieces:
            line_nodes.add(_key(s))
            line_nodes.add(_key(e))
        seen = set()
        for p in crossings:
            k = _key(p)
            if k in seen or k in kept_nodes or k in line_nodes:
                continue
            seen.add(k)
            if (
                locate(p, a) is not _EXT
                and locate(p, b) is not _EXT
            ):
                touch_points.append(p)
        del line_keys
    return polygons, shared_line_pieces, touch_points


def _find_twin(piece: _Piece, pieces_other: List[_Piece]) -> Optional[_Piece]:
    key = _edge_key(piece.start, piece.end)
    for other in pieces_other:
        if _edge_key(other.start, other.end) == key:
            return other
    return None


def _same_direction(p: _Piece, q: _Piece) -> bool:
    dx1, dy1 = p.end[0] - p.start[0], p.end[1] - p.start[1]
    dx2, dy2 = q.end[0] - q.start[0], q.end[1] - q.start[1]
    return dx1 * dx2 + dy1 * dy2 > 0.0


def _probe_sides(piece: _Piece, other: Geometry) -> Tuple[bool, bool]:
    """Numeric fallback: probe both sides of the piece against ``other``."""
    dx, dy = piece.end[0] - piece.start[0], piece.end[1] - piece.start[1]
    norm = math.hypot(dx, dy)
    eps = norm * 1e-4
    ux, uy = -dy / norm, dx / norm
    left = (piece.mid[0] + eps * ux, piece.mid[1] + eps * uy)
    right = (piece.mid[0] - eps * ux, piece.mid[1] - eps * uy)
    return (
        locate(left, other) is _INT,
        locate(right, other) is _INT,
    )


def _stitch(
    edges: List[Tuple[Coord, Coord]]
) -> List[Tuple[Tuple[Coord, ...], List[Tuple[Coord, ...]]]]:
    """Connect directed result-left edges into rings and group into polygons."""
    if not edges:
        return []
    out_edges: Dict[Tuple[float, float], List[int]] = {}
    for idx, (s, _e) in enumerate(edges):
        out_edges.setdefault(_key(s), []).append(idx)
    used = [False] * len(edges)
    rings: List[List[Coord]] = []

    for start_idx in range(len(edges)):
        if used[start_idx]:
            continue
        ring: List[Coord] = [edges[start_idx][0]]
        cur = start_idx
        used[cur] = True
        guard = 0
        while True:
            guard += 1
            if guard > len(edges) + 1:
                raise TopologyError("overlay stitching failed to close a ring")
            s, e = edges[cur]
            ring.append(e)
            if _key(e) == _key(ring[0]):
                rings.append(ring)
                break
            candidates = [
                i for i in out_edges.get(_key(e), ()) if not used[i]
            ]
            if not candidates:
                # dangling chain: numerical casualty — drop it
                rings.append([])
                break
            if len(candidates) == 1:
                nxt = candidates[0]
            else:
                nxt = _pick_clockwise(edges, cur, candidates)
            used[nxt] = True
            cur = nxt

    polys: List[Tuple[Tuple[Coord, ...], float]] = []
    holes: List[Tuple[Tuple[Coord, ...], float]] = []
    for ring in rings:
        if len(ring) < 4:
            continue
        coords = tuple(ring)
        signed = signed_ring_area(coords)
        if abs(signed) < 1e-12:
            continue
        if signed > 0.0:
            polys.append((coords, signed))
        else:
            holes.append((coords, signed))

    result: List[Tuple[Tuple[Coord, ...], List[Tuple[Coord, ...]]]] = [
        (shell, []) for shell, _a in sorted(polys, key=lambda t: t[1])
    ]
    for hole, _a in holes:
        probe = _ring_inner_probe(hole)
        placed = False
        for shell, shell_holes in result:  # smallest containing shell first
            from repro.algorithms.location import locate_in_ring

            if locate_in_ring(probe, shell) is _INT:
                shell_holes.append(hole)
                placed = True
                break
        if not placed:
            # A hole with no shell means inconsistent stitching; surface it.
            raise TopologyError("overlay produced an orphan hole ring")
    return result


def _pick_clockwise(
    edges: List[Tuple[Coord, Coord]], cur: int, candidates: List[int]
) -> int:
    """Next edge = first candidate rotating clockwise from the reversed
    incoming direction (keeps the traced face on the left)."""
    s, e = edges[cur]
    rev = math.atan2(s[1] - e[1], s[0] - e[0])
    best = None
    best_delta = math.inf
    for idx in candidates:
        cs, ce = edges[idx]
        ang = math.atan2(ce[1] - cs[1], ce[0] - cs[0])
        delta = (rev - ang) % (2.0 * math.pi)
        if delta < 1e-12:
            delta = 2.0 * math.pi  # the straight-back edge is the last resort
        if delta < best_delta:
            best_delta = delta
            best = idx
    assert best is not None
    return best


def _ring_inner_probe(ring: Sequence[Coord]) -> Coord:
    from repro.algorithms.location import locate_in_ring

    for i in range(1, len(ring) - 1):
        mid = (
            (ring[i - 1][0] + ring[i + 1][0]) / 2.0,
            (ring[i - 1][1] + ring[i + 1][1]) / 2.0,
        )
        if locate_in_ring(mid, ring) is _INT:
            return mid
    return ring[0]


def polygons_from_overlay(
    parts: List[Tuple[Tuple[Coord, ...], List[Tuple[Coord, ...]]]]
) -> Optional[Geometry]:
    """Build a Polygon/MultiPolygon from stitched rings (None when empty)."""
    built = [Polygon(shell, holes) for shell, holes in parts]
    if not built:
        return None
    if len(built) == 1:
        return built[0]
    return MultiPolygon(built)


def overlay_areal(a: Geometry, b: Geometry, op: str) -> Optional[Geometry]:
    """Areal part of the boolean result (None when it has no area)."""
    parts, _lines, _pts = overlay(a, b, op)
    geom = polygons_from_overlay(parts)
    if geom is not None and geom_area(geom) < 1e-15:
        return None
    return geom
