"""Geometry validity checks (OGC-style ``ST_IsValid`` / ``ST_IsSimple``).

Validity matters to the benchmark in two places: the data generator must
emit valid layers (asserted by tests), and the loading micro benchmark
optionally validates each geometry as it ingests it, the way a production
loader would.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.algorithms.location import Location, locate_in_ring
from repro.algorithms.predicates import (
    on_segment,
    segment_intersection,
    segments_properly_cross,
)
from repro.geometry.base import Coord, Geometry
from repro.geometry.collection import GeometryCollection
from repro.geometry.linestring import LineString, MultiLineString
from repro.geometry.point import MultiPoint, Point
from repro.geometry.polygon import MultiPolygon, Polygon


def ring_is_simple(ring: Sequence[Coord]) -> bool:
    """True iff the closed ring has no self-intersections besides the closure."""
    segs = [
        (a, b) for a, b in zip(ring, ring[1:]) if a != b
    ]
    n = len(segs)
    for i in range(n):
        a, b = segs[i]
        for j in range(i + 1, n):
            c, d = segs[j]
            hit = segment_intersection(a, b, c, d)
            if hit is None:
                continue
            adjacent = j == i + 1 or (i == 0 and j == n - 1)
            if isinstance(hit, tuple) and isinstance(hit[0], tuple):
                return False  # collinear overlap is never allowed
            if adjacent:
                # adjacent segments may share exactly their common endpoint
                shared = b if j == i + 1 else a
                if hit != shared:
                    return False
            else:
                return False
    return True


def line_is_simple(line: LineString) -> bool:
    """True iff the linestring does not pass through the same point twice
    (except for a closing endpoint)."""
    segs = list(line.segments())
    n = len(segs)
    closed = line.is_closed
    for i in range(n):
        a, b = segs[i]
        for j in range(i + 1, n):
            c, d = segs[j]
            hit = segment_intersection(a, b, c, d)
            if hit is None:
                continue
            if isinstance(hit, tuple) and isinstance(hit[0], tuple):
                return False
            adjacent = j == i + 1
            wraps = closed and i == 0 and j == n - 1
            if adjacent and hit == b:
                continue
            if wraps and hit == a:
                continue
            return False
    return True


def _rings_conflict(outer: Sequence[Coord], inner: Sequence[Coord]) -> bool:
    """True when two rings cross each other (proper segment crossings)."""
    for a, b in zip(outer, outer[1:]):
        for c, d in zip(inner, inner[1:]):
            if segments_properly_cross(a, b, c, d):
                return True
    return False


def polygon_validity_errors(polygon: Polygon) -> List[str]:
    """All the reasons a polygon is invalid (empty list = valid)."""
    errors: List[str] = []
    if not ring_is_simple(polygon.shell):
        errors.append("shell is not simple")
    for i, hole in enumerate(polygon.holes):
        if not ring_is_simple(hole):
            errors.append(f"hole {i} is not simple")
            continue
        if _rings_conflict(polygon.shell, hole):
            errors.append(f"hole {i} crosses the shell")
            continue
        probe = _ring_probe_point(hole)
        if locate_in_ring(probe, polygon.shell) is Location.EXTERIOR:
            errors.append(f"hole {i} lies outside the shell")
    for i in range(len(polygon.holes)):
        for j in range(i + 1, len(polygon.holes)):
            if _rings_conflict(polygon.holes[i], polygon.holes[j]):
                errors.append(f"holes {i} and {j} cross")
            else:
                probe = _ring_probe_point(polygon.holes[j])
                if locate_in_ring(probe, polygon.holes[i]) is Location.INTERIOR:
                    errors.append(f"hole {j} is nested inside hole {i}")
    return errors


def _ring_probe_point(ring: Sequence[Coord]) -> Coord:
    """A point in the closed region bounded by the ring (vertex centroid of
    an ear; falls back to the first vertex)."""
    for i in range(1, len(ring) - 1):
        a, b, c = ring[i - 1], ring[i], ring[i + 1]
        mid = ((a[0] + c[0]) / 2.0, (a[1] + c[1]) / 2.0)
        if locate_in_ring(mid, ring) is Location.INTERIOR:
            return mid
        del b
    return ring[0]


def is_valid(geom: Geometry) -> bool:
    """OGC validity: simple rings, holes inside shells, no ring crossings."""
    if isinstance(geom, (Point, MultiPoint)):
        return True
    if isinstance(geom, LineString):
        return True  # linestrings are valid if constructible
    if isinstance(geom, MultiLineString):
        return True
    if isinstance(geom, Polygon):
        return not polygon_validity_errors(geom)
    if isinstance(geom, MultiPolygon):
        if any(polygon_validity_errors(p) for p in geom.polygons):
            return False
        # member shells must not cross each other
        polys = geom.polygons
        for i in range(len(polys)):
            for j in range(i + 1, len(polys)):
                if _rings_conflict(polys[i].shell, polys[j].shell):
                    return False
        return True
    if isinstance(geom, GeometryCollection):
        return all(is_valid(member) for member in geom.geoms)
    raise TypeError(f"cannot validate {type(geom).__name__}")


def is_simple(geom: Geometry) -> bool:
    """OGC ``ST_IsSimple``."""
    if isinstance(geom, Point):
        return True
    if isinstance(geom, MultiPoint):
        coords = [p.coord for p in geom.points]
        return len(set(coords)) == len(coords)
    if isinstance(geom, LineString):
        return line_is_simple(geom)
    if isinstance(geom, MultiLineString):
        if not all(line_is_simple(line) for line in geom.lines):
            return False
        # members may only touch at their endpoints
        lines = geom.lines
        for i in range(len(lines)):
            for j in range(i + 1, len(lines)):
                ends = {
                    lines[i].coords[0], lines[i].coords[-1],
                    lines[j].coords[0], lines[j].coords[-1],
                }
                for a, b in lines[i].segments():
                    for c, d in lines[j].segments():
                        hit = segment_intersection(a, b, c, d)
                        if hit is None:
                            continue
                        if isinstance(hit, tuple) and isinstance(hit[0], tuple):
                            return False
                        if hit not in ends:
                            return False
        return True
    if isinstance(geom, (Polygon, MultiPolygon)):
        return is_valid(geom)
    if isinstance(geom, GeometryCollection):
        return all(is_simple(member) for member in geom.geoms)
    raise TypeError(f"cannot test simplicity of {type(geom).__name__}")


__all__ = [
    "ring_is_simple",
    "line_is_simple",
    "polygon_validity_errors",
    "is_valid",
    "is_simple",
    "on_segment",
]
